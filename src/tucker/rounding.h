// Tucker rounding: recompress an existing decomposition to smaller ranks
// without touching the original tensor.
//
// Because the factors are column-orthogonal, the optimal rank-(K1..KN)
// truncation of the *model* is obtained by ST-HOSVD of the (small) core:
// G ~= H x_1 B(1) ... x_N B(N), giving factors A(n) B(n) and core H. Cost
// O(prod J) — independent of the tensor size. This is how a stored
// decomposition (e.g. from the CLI) is downgraded to a coarser rank on
// demand, complementing D-Tucker's compress-once / query-many workflow.
#ifndef DTUCKER_TUCKER_ROUNDING_H_
#define DTUCKER_TUCKER_ROUNDING_H_

#include "common/status.h"
#include "tucker/tucker.h"

namespace dtucker {

// Truncates `dec` to `new_ranks` (each 1 <= K_n <= J_n). Requires
// column-orthogonal factors (as produced by every solver here except
// Tucker-ts). The result's factors are again column-orthogonal.
Result<TuckerDecomposition> RoundTucker(const TuckerDecomposition& dec,
                                        const std::vector<Index>& new_ranks);

// Truncates to the smallest ranks whose core energy loss stays below
// `tolerance` (relative squared, against the model's energy).
Result<TuckerDecomposition> RoundTuckerToTolerance(
    const TuckerDecomposition& dec, double tolerance);

}  // namespace dtucker

#endif  // DTUCKER_TUCKER_ROUNDING_H_
