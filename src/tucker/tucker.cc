#include "tucker/tucker.h"

#include <algorithm>
#include <atomic>
#include <cstdio>

#include "common/metrics.h"
#include "tensor/tensor_ops.h"

namespace dtucker {

std::vector<Index> TuckerDecomposition::Ranks() const {
  std::vector<Index> ranks;
  ranks.reserve(factors.size());
  for (const auto& f : factors) ranks.push_back(f.cols());
  return ranks;
}

Status TuckerDecomposition::Validate() const {
  if (factors.empty()) {
    return Status::InvalidArgument("decomposition has no factor matrices");
  }
  if (core.order() != order()) {
    return Status::InvalidArgument(
        "core order " + std::to_string(core.order()) +
        " does not match factor count " + std::to_string(factors.size()));
  }
  for (Index n = 0; n < order(); ++n) {
    const Matrix& f = factors[static_cast<std::size_t>(n)];
    if (f.rows() <= 0 || f.cols() <= 0) {
      return Status::InvalidArgument("factor " + std::to_string(n) +
                                     " is empty");
    }
    if (f.cols() != core.dim(n)) {
      return Status::InvalidArgument(
          "factor " + std::to_string(n) + " has " + std::to_string(f.cols()) +
          " columns but core dimension " + std::to_string(core.dim(n)));
    }
  }
  return Status::OK();
}

Tensor TuckerDecomposition::Reconstruct() const {
  Tensor out = core;
  for (Index n = 0; n < order(); ++n) {
    // Factor A is I_n x J_n; with Trans::kNo it multiplies from the left
    // (contracting the core's J_n) and expands the mode back to I_n.
    out = ModeProduct(out, factors[static_cast<std::size_t>(n)], n,
                      Trans::kNo);
  }
  return out;
}

double TuckerDecomposition::RelativeErrorAgainst(const Tensor& x) const {
  Tensor rec = Reconstruct();
  return RelativeError(x, rec);
}

std::size_t TuckerDecomposition::ByteSize() const {
  std::size_t bytes = core.ByteSize();
  for (const auto& f : factors) bytes += f.ByteSize();
  return bytes;
}

double OrthogonalTuckerRelativeError(double x_squared_norm,
                                     double core_squared_norm) {
  if (x_squared_norm <= 0) return 0.0;
  // Clamp: roundoff can push the projected mass slightly above ||X||^2.
  const double residual =
      std::max(0.0, x_squared_norm - core_squared_norm);
  return residual / x_squared_norm;
}

namespace {
std::atomic<int> g_sweep_metrics_window{64};
}  // namespace

void SetSweepMetricsWindow(int window) {
  g_sweep_metrics_window.store(window < 1 ? 1 : window,
                               std::memory_order_relaxed);
}

void RecordSweepMetrics(const TuckerStats& stats) {
  const int window = g_sweep_metrics_window.load(std::memory_order_relaxed);
  char name[64];
  double total_seconds = 0.0;
  double total_subspace = 0.0;
  for (const SweepTelemetry& t : stats.sweep_history) {
    // Rolling window keeps the gauge namespace bounded (see tucker.h):
    // sweep t reuses slot ((t-1) % window) + 1, identity for t <= window.
    const int slot = (t.sweep - 1) % window + 1;
    std::snprintf(name, sizeof(name), "dtucker.sweep%02d.fit", slot);
    MetricGauge(name).Set(t.fit);
    std::snprintf(name, sizeof(name), "dtucker.sweep%02d.delta_fit", slot);
    MetricGauge(name).Set(t.delta_fit);
    std::snprintf(name, sizeof(name), "dtucker.sweep%02d.seconds", slot);
    MetricGauge(name).Set(t.seconds);
    std::snprintf(name, sizeof(name), "dtucker.sweep%02d.subspace_iterations",
                  slot);
    MetricGauge(name).Set(static_cast<double>(t.subspace_iterations));
    total_seconds += t.seconds;
    total_subspace += static_cast<double>(t.subspace_iterations);
  }
  if (!stats.sweep_history.empty()) {
    // Set (not Add): FinishRun may re-publish the same history.
    MetricGauge("dtucker.sweeps.count")
        .Set(static_cast<double>(stats.sweep_history.size()));
    MetricGauge("dtucker.sweeps.total_seconds").Set(total_seconds);
    MetricGauge("dtucker.sweeps.total_subspace_iterations")
        .Set(total_subspace);
  }
}

}  // namespace dtucker
