// Tucker decomposition result type and shared utilities.
#ifndef DTUCKER_TUCKER_TUCKER_H_
#define DTUCKER_TUCKER_TUCKER_H_

#include <cstdint>
#include <vector>

#include "common/run_context.h"
#include "common/status.h"
#include "linalg/matrix.h"
#include "tensor/tensor.h"

namespace dtucker {

// X ~= core x_1 factors[0] x_2 factors[1] ... x_N factors[N-1], with
// factors[n] of shape I_n x J_n (column-orthogonal) and core of shape
// J_1 x ... x J_N.
struct TuckerDecomposition {
  Tensor core;
  std::vector<Matrix> factors;

  Index order() const { return static_cast<Index>(factors.size()); }

  // Tucker ranks (J_1, ..., J_N).
  std::vector<Index> Ranks() const;

  // Structural consistency: at least one factor, core order matching the
  // factor count, every factor non-empty with column count equal to the
  // corresponding core dimension. Checked at the API boundaries that accept
  // externally produced decompositions (file loads, rounding, partial
  // reconstruction) so malformed input reports an error instead of
  // tripping internal invariant checks.
  Status Validate() const;

  // Dense reconstruction core x_1 A1 ... x_N AN. O(prod I_n * J) time.
  Tensor Reconstruct() const;

  // Relative squared reconstruction error against `x`:
  // ||X - X^||_F^2 / ||X||_F^2.
  double RelativeErrorAgainst(const Tensor& x) const;

  // Logical bytes of core + factors (the space the paper's Q2/E3
  // experiment charges a method for its outputs).
  std::size_t ByteSize() const;
};

// Shared knobs for every Tucker solver in this project.
struct TuckerOptions {
  std::vector<Index> ranks;  // One per mode; required.
  int max_iterations = 100;  // Paper default (Appendix C style).
  // Stop when the change of relative error between sweeps drops below this.
  double tolerance = 1e-4;
  uint64_t seed = 42;  // For randomized components.
  // When true, solvers reject inputs containing NaN/Inf with
  // InvalidArgument instead of silently propagating them (one O(size)
  // scan; off by default to keep timing benchmarks clean).
  bool validate_input = false;
  // Optional execution control (caller-owned, must outlive the solve).
  // When set, the solver polls it at bounded-work checkpoints and honors
  // cancellation/deadline with graceful degradation: iterative solvers
  // return the state of the last completed sweep with
  // TuckerStats::completion recording the interruption; one-shot phases
  // that have no intermediate state report the interruption as an error
  // Status instead. See common/run_context.h and DESIGN.md §10.
  const RunContext* run_context = nullptr;
};

// Convergence telemetry for one ALS/HOOI sweep. Solvers that support it
// append one record per sweep to TuckerStats::sweep_history and invoke the
// caller's SweepCallback (DTuckerOptions) with it as the sweep finishes.
struct SweepTelemetry {
  int sweep = 0;                // 1-based sweep number.
  double fit = 0;               // 1 - sqrt(relative squared error).
  double delta_fit = 0;         // fit - previous sweep's fit (0 on sweep 1).
  double relative_error = 0;    // Same quantity as error_history.
  double seconds = 0;           // Wall time of this sweep.
  // Subspace/eigen iterations the factor updates spent this sweep (delta of
  // the global "eig.subspace_sweeps" counter; includes concurrent users).
  std::uint64_t subspace_iterations = 0;
};

// Per-run diagnostics filled in by the solvers.
struct TuckerStats {
  // How the run ended: kOk for a natural finish (convergence or iteration
  // budget), kCancelled/kDeadlineExceeded when a RunContext interrupted it
  // and the returned decomposition is the best-so-far partial result.
  StatusCode completion = StatusCode::kOk;
  // Checkpoint that observed the interruption (e.g. "iteration.sweep" or
  // "initialization"); empty on natural completion.
  std::string completion_detail;
  int iterations = 0;
  std::vector<double> error_history;  // Relative error after each sweep.
  std::vector<SweepTelemetry> sweep_history;  // One entry per sweep.
  double preprocess_seconds = 0;      // Approximation/sketching phase.
  double init_seconds = 0;            // Initialization phase.
  double iterate_seconds = 0;         // ALS sweeps.
  double TotalSeconds() const {
    return preprocess_seconds + init_seconds + iterate_seconds;
  }
  // Peak logical working-set bytes beyond the input tensor itself.
  std::size_t working_bytes = 0;
  // Adaptive execution (--solver=auto or a fixed variant plan): the plan
  // the run executed, as the canonical "eig=...,qr=...,carrier=...,gram=..."
  // spec string, and the cost model's predicted phase seconds for
  // predicted-vs-actual auditing (zeros when no prediction ran). Filled by
  // the Engine; plain strings/doubles so this header stays below the
  // adaptive layer.
  std::string selected_variants;
  std::string solver_rationale;
  double predicted_approx_seconds = 0;
  double predicted_init_seconds = 0;
  double predicted_sweep_seconds = 0;
};

// Fast relative error when factors are column-orthogonal and `core` is the
// exact projection: ||X - X^||^2 = ||X||^2 - ||G||^2.
double OrthogonalTuckerRelativeError(double x_squared_norm,
                                     double core_squared_norm);

// Publishes `stats.sweep_history` into the global metrics registry as
// gauges ("dtucker.sweep<NN>.fit", ".delta_fit", ".seconds",
// ".subspace_iterations"), so a --metrics-out snapshot carries the
// convergence trajectory alongside the counters.
//
// The per-sweep gauge namespace is bounded: sweep t lands in slot
// ((t - 1) % K) + 1 where K is the rolling window (default 64,
// SetSweepMetricsWindow). Runs within the window keep the identity
// mapping sweep t -> "dtucker.sweep<t>"; longer runs wrap, so at most
// 4*K sweep gauges ever exist while the cumulative totals
// ("dtucker.sweeps.count", ".total_seconds", ".total_subspace_iterations")
// still cover every sweep. Idempotent: the gauges and totals are Set, not
// accumulated, so re-publishing the same history is a no-op.
void RecordSweepMetrics(const TuckerStats& stats);

// Resizes the rolling sweep-gauge window (clamped to >= 1). Process-wide;
// intended for tests and long-running services that want a tighter bound.
void SetSweepMetricsWindow(int window);

}  // namespace dtucker

#endif  // DTUCKER_TUCKER_TUCKER_H_
