#include "tucker/tucker_als.h"

#include <cmath>

#include "common/metrics.h"
#include "common/rng.h"
#include "common/timer.h"
#include "common/trace.h"
#include "linalg/qr.h"
#include "linalg/svd.h"
#include "rsvd/rsvd.h"
#include "tensor/tensor_ops.h"
#include "tensor/tensor_utils.h"
#include "tucker/hosvd.h"

namespace dtucker {

Status ValidateRanks(const std::vector<Index>& shape,
                     const std::vector<Index>& ranks) {
  if (ranks.size() != shape.size()) {
    return Status::InvalidArgument("need exactly one Tucker rank per mode");
  }
  for (std::size_t n = 0; n < ranks.size(); ++n) {
    if (ranks[n] <= 0) {
      return Status::InvalidArgument("Tucker ranks must be positive");
    }
    if (ranks[n] > shape[n]) {
      return Status::InvalidArgument(
          "Tucker rank exceeds dimensionality at mode " + std::to_string(n));
    }
  }
  return Status::OK();
}

Result<TuckerDecomposition> TuckerAls(const Tensor& x,
                                      const TuckerAlsOptions& options,
                                      TuckerStats* stats) {
  DT_RETURN_NOT_OK(ValidateRanks(x.shape(), options.ranks));
  if (options.validate_input) DT_RETURN_NOT_OK(ValidateFinite(x));
  const RunContext* ctx = options.run_context;
  const Index order = x.order();
  const double x_norm2 = x.SquaredNorm();

  TuckerDecomposition dec;
  Timer init_timer;
  DT_TRACE_SPAN("als.solve");
  if (options.init == TuckerInit::kHosvd) {
    // An interruption inside the initializer propagates as an error: no
    // valid state exists yet to degrade to.
    DT_ASSIGN_OR_RETURN(dec, StHosvd(x, options.ranks, ctx));
  } else {
    Rng rng(options.seed);
    dec.factors.resize(static_cast<std::size_t>(order));
    for (Index n = 0; n < order; ++n) {
      Matrix g = Matrix::GaussianRandom(
          x.dim(n), options.ranks[static_cast<std::size_t>(n)], rng);
      dec.factors[static_cast<std::size_t>(n)] = QrOrthonormalize(g);
    }
    dec.core = ModeProductChain(x, dec.factors, -1, Trans::kYes);
  }
  GlobalPhaseTimer().Add("als.initialization", init_timer.Seconds());
  if (stats != nullptr) stats->init_seconds = init_timer.Seconds();

  Timer iterate_timer;
  double prev_error = OrthogonalTuckerRelativeError(x_norm2,
                                                    dec.core.SquaredNorm());
  if (stats != nullptr) stats->error_history.push_back(prev_error);
  // Same graceful-degradation contract as DTuckerFromApproximation: armed
  // runs snapshot before each sweep and roll back on a mid-sweep trip, so
  // the returned decomposition is always a fully consistent sweep state.
  const bool armed = ctx != nullptr;
  StatusCode stop = StatusCode::kOk;
  std::vector<Matrix> factors_snapshot;
  Tensor core_snapshot;

  int it = 0;
  for (; it < options.max_iterations; ++it) {
    DT_TRACE_SPAN("als.sweep");
    stop = RunContext::CheckOrOk(ctx);
    if (stop != StatusCode::kOk) break;
    if (armed) {
      factors_snapshot = dec.factors;
      core_snapshot = dec.core;
    }
    bool sweep_completed = true;
    for (Index n = 0; n < order; ++n) {
      if (RunContext::CheckOrOk(ctx) != StatusCode::kOk) {
        sweep_completed = false;
        break;
      }
      // Y = X x_{k != n} A(k)^T; factor update from its mode-n unfolding.
      Tensor y = ModeProductChain(x, dec.factors, n, Trans::kYes);
      Matrix yn = Unfold(y, n);
      const Index rank = options.ranks[static_cast<std::size_t>(n)];
      Matrix* factor = &dec.factors[static_cast<std::size_t>(n)];
      switch (options.factor_update) {
        case FactorUpdate::kGramEig:
          *factor = LeadingLeftSingularVectorsViaGram(yn, rank);
          break;
        case FactorUpdate::kExactSvd:
          *factor = LeadingLeftSingularVectors(yn, rank);
          break;
        case FactorUpdate::kRandomized: {
          RsvdOptions rsvd;
          rsvd.rank = rank;
          rsvd.seed = options.seed + static_cast<uint64_t>(n) * 131 +
                      static_cast<uint64_t>(it) * 100003;
          SvdResult svd = RandomizedSvd(yn, rsvd);
          *factor = std::move(svd.u);
          break;
        }
      }
      if (n == order - 1) {
        // Core refresh for free: contract the final mode of the last Y.
        dec.core = ModeProduct(y, dec.factors[static_cast<std::size_t>(n)], n,
                               Trans::kYes);
      }
    }
    if (!sweep_completed) {
      dec.factors = std::move(factors_snapshot);
      dec.core = std::move(core_snapshot);
      stop = RunContext::CheckOrOk(ctx);
      if (stop == StatusCode::kOk) stop = StatusCode::kCancelled;
      break;
    }
    const double error =
        OrthogonalTuckerRelativeError(x_norm2, dec.core.SquaredNorm());
    if (stats != nullptr) stats->error_history.push_back(error);
    const double delta = std::fabs(prev_error - error);
    prev_error = error;
    if (delta < options.tolerance) {
      ++it;
      break;
    }
  }
  GlobalPhaseTimer().Add("als.iteration", iterate_timer.Seconds());
  if (stats != nullptr) {
    stats->iterations = it;
    stats->iterate_seconds = iterate_timer.Seconds();
    stats->completion = stop;
    if (stop != StatusCode::kOk) {
      stats->completion_detail = std::string(StatusCodeToString(stop)) +
                                 " during ALS iteration; " +
                                 std::to_string(it) + " completed sweep(s)";
    }
  }
  return dec;
}

}  // namespace dtucker
