// Tucker-ALS (HOOI): the reference dense Tucker solver and the main
// accuracy baseline of the paper's evaluation.
//
// Each sweep updates every factor as the leading singular vectors of the
// partially contracted tensor Y = X x_{k != n} A(k)^T, then refreshes the
// core. Cost is dominated by the first contraction against the raw tensor,
// O(J * prod I_n) per mode per sweep — exactly the term D-Tucker removes.
#ifndef DTUCKER_TUCKER_TUCKER_ALS_H_
#define DTUCKER_TUCKER_TUCKER_ALS_H_

#include "common/status.h"
#include "tucker/tucker.h"

namespace dtucker {

enum class TuckerInit {
  kHosvd,   // ST-HOSVD initialization (default; deterministic).
  kRandom,  // Random orthonormal factors from options.seed.
};

enum class FactorUpdate {
  // Leading eigenvectors of the Gram matrix Y_(n) Y_(n)^T — O(I_n^2 * rest)
  // with a squared condition number; the fast default.
  kGramEig,
  // Exact thin SVD of the unfolding (QR + one-sided Jacobi) — slower,
  // full-precision; the ablation reference.
  kExactSvd,
  // Randomized SVD of the unfolding — cheapest when I_n is large relative
  // to the rank; adds a small subspace perturbation per sweep.
  kRandomized,
};

struct TuckerAlsOptions : TuckerOptions {
  TuckerInit init = TuckerInit::kHosvd;
  FactorUpdate factor_update = FactorUpdate::kGramEig;
};

// Runs HOOI. `stats` may be null.
Result<TuckerDecomposition> TuckerAls(const Tensor& x,
                                      const TuckerAlsOptions& options,
                                      TuckerStats* stats = nullptr);

// Validates rank/shape compatibility; shared by all solvers.
Status ValidateRanks(const std::vector<Index>& shape,
                     const std::vector<Index>& ranks);

}  // namespace dtucker

#endif  // DTUCKER_TUCKER_TUCKER_ALS_H_
