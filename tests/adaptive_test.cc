// Tests for the input-adaptive execution layer (dtucker/adaptive/ +
// EngineOptions::solver_policy): variant registry round-trips, cost-model
// calibration robustness, fit parity across variant plans, bitwise
// determinism of fixed plans, and graceful degradation of `--solver=auto`.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/generators.h"
#include "dtucker/adaptive/cost_model.h"
#include "dtucker/adaptive/tuner.h"
#include "dtucker/adaptive/variants.h"
#include "dtucker/engine.h"
#include "linalg/blas.h"

namespace dtucker {
namespace {

using adaptive::CarrierBuilderVariant;
using adaptive::CostModel;
using adaptive::GramVariant;
using adaptive::PhaseVariantPlan;
using adaptive::WorkloadSignature;

// ---------------------------------------------------------------------------
// Variant registry (ParsePlan / ToString).
// ---------------------------------------------------------------------------

TEST(VariantsTest, EmptySpecIsDefaultPlan) {
  Result<PhaseVariantPlan> plan = adaptive::ParsePlan("");
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan.value().IsDefault());
}

TEST(VariantsTest, PlanStringRoundTripsEveryConcreteCombination) {
  const EigSolverVariant eigs[] = {
      EigSolverVariant::kAuto, EigSolverVariant::kJacobi,
      EigSolverVariant::kQl, EigSolverVariant::kSubspace};
  const QrVariant qrs[] = {QrVariant::kAuto, QrVariant::kBlocked,
                           QrVariant::kScalar};
  const CarrierBuilderVariant carriers[] = {CarrierBuilderVariant::kAuto,
                                            CarrierBuilderVariant::kSliceParallel,
                                            CarrierBuilderVariant::kGemmParallel};
  const GramVariant grams[] = {GramVariant::kExact, GramVariant::kSketched};
  for (EigSolverVariant e : eigs) {
    for (QrVariant q : qrs) {
      for (CarrierBuilderVariant c : carriers) {
        for (GramVariant g : grams) {
          PhaseVariantPlan plan;
          plan.eig = e;
          plan.qr = q;
          plan.carrier = c;
          plan.gram = g;
          Result<PhaseVariantPlan> back = adaptive::ParsePlan(plan.ToString());
          ASSERT_TRUE(back.ok()) << plan.ToString();
          EXPECT_TRUE(back.value() == plan) << plan.ToString();
        }
      }
    }
  }
}

TEST(VariantsTest, RejectsUnknownVariantListingRegistry) {
  Result<PhaseVariantPlan> plan = adaptive::ParsePlan("eig=bogus");
  ASSERT_FALSE(plan.ok());
  const std::string msg = plan.status().ToString();
  // The error carries the full registered-variant list so a CLI user can
  // self-serve the correction.
  EXPECT_NE(msg.find("jacobi"), std::string::npos) << msg;
  EXPECT_NE(msg.find("subspace"), std::string::npos) << msg;
}

TEST(VariantsTest, RejectsUnknownAxis) {
  EXPECT_FALSE(adaptive::ParsePlan("flux=warp").ok());
  EXPECT_FALSE(adaptive::ParsePlan("eig").ok());
}

TEST(EngineValidateTest, UnknownSolverSpecListsRegisteredVariants) {
  EngineOptions opt;
  opt.method_options.tucker.ranks = {2, 2, 2};
  opt.solver_spec = "eig=nope";
  const Status st = opt.Validate({8, 8, 8});
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("subspace"), std::string::npos) << st.ToString();
}

// ---------------------------------------------------------------------------
// Cost model: heuristic mirrors, calibration I/O, predictions.
// ---------------------------------------------------------------------------

TEST(CostModelTest, ResolveMirrorsStaticHeuristics) {
  EXPECT_EQ(CostModel::ResolveEig(EigSolverVariant::kAuto, 64, 10),
            EigSolverVariant::kQl);
  EXPECT_EQ(CostModel::ResolveEig(EigSolverVariant::kAuto, 200, 10),
            EigSolverVariant::kSubspace);
  EXPECT_EQ(CostModel::ResolveEig(EigSolverVariant::kAuto, 100, 50),
            EigSolverVariant::kQl);  // 2k >= n: dense.
  EXPECT_EQ(CostModel::ResolveEig(EigSolverVariant::kJacobi, 500, 2),
            EigSolverVariant::kJacobi);  // Forced passes through.
  EXPECT_EQ(CostModel::ResolveQr(QrVariant::kAuto, 100, 12),
            QrVariant::kScalar);
  EXPECT_EQ(CostModel::ResolveQr(QrVariant::kAuto, 100, 13),
            QrVariant::kBlocked);
  EXPECT_EQ(CostModel::ResolveCarrier(CarrierBuilderVariant::kAuto, 8, 4),
            CarrierBuilderVariant::kSliceParallel);
  EXPECT_EQ(CostModel::ResolveCarrier(CarrierBuilderVariant::kAuto, 2, 4),
            CarrierBuilderVariant::kGemmParallel);
}

WorkloadSignature VideoSignature() {
  WorkloadSignature w;
  w.shape = {128, 96, 205};
  w.ranks = {10, 10, 10};
  w.slice_rank = 10;
  w.num_threads = 4;
  return w;
}

TEST(CostModelTest, PredictionsArePositiveAndTotalComposes) {
  CostModel m;
  const WorkloadSignature w = VideoSignature();
  const PhaseVariantPlan plan;
  EXPECT_GT(m.PredictApproxSeconds(w, plan.qr), 0.0);
  EXPECT_GT(m.PredictInitSeconds(w, plan), 0.0);
  EXPECT_GT(m.PredictSweepSeconds(w, plan), 0.0);
  EXPECT_NEAR(m.PredictTotalSeconds(w, plan),
              m.PredictApproxSeconds(w, plan.qr) +
                  m.PredictInitSeconds(w, plan) +
                  w.expected_sweeps * m.PredictSweepSeconds(w, plan),
              1e-12);
}

std::string WriteTempFile(const char* tag, const std::string& contents) {
  std::string path = ::testing::TempDir() + "adaptive_test_" + tag + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  EXPECT_NE(f, nullptr);
  std::fputs(contents.c_str(), f);
  std::fclose(f);
  return path;
}

TEST(CostModelTest, CalibrationRoundTripsThroughToJson) {
  CostModel a;
  a.SetCoefficient("eig.ql", 2.71828);
  a.SetCoefficient("custom.key", 0.125);
  const std::string path = WriteTempFile("roundtrip", a.ToJson());
  CostModel b;
  EXPECT_TRUE(b.LoadCalibration(path));
  EXPECT_DOUBLE_EQ(b.Coefficient("eig.ql"), 2.71828);
  EXPECT_DOUBLE_EQ(b.Coefficient("custom.key"), 0.125);
  std::remove(path.c_str());
}

TEST(CostModelTest, MissingCalibrationKeepsDefaultsAndReturnsFalse) {
  CostModel m;
  const auto defaults = m.coefficients();
  EXPECT_FALSE(m.LoadCalibration("/nonexistent/calibration.json"));
  EXPECT_EQ(m.coefficients(), defaults);
}

TEST(CostModelTest, CorruptCalibrationKeepsDefaultsAndReturnsFalse) {
  CostModel m;
  const auto defaults = m.coefficients();
  for (const char* corrupt :
       {"{oops", "[1, 2]", "{\"eig.ql\": \"fast\"}", "{\"eig.ql\": -3}",
        "{\"eig.ql\": 0}", "{\"a\": 1 \"b\": 2}"}) {
    const std::string path = WriteTempFile("corrupt", corrupt);
    EXPECT_FALSE(m.LoadCalibration(path)) << corrupt;
    EXPECT_EQ(m.coefficients(), defaults) << corrupt;
    std::remove(path.c_str());
  }
}

TEST(CostModelTest, ObserveRefinesScaleTowardMeasurement) {
  CostModel m;
  const WorkloadSignature w = VideoSignature();
  const PhaseVariantPlan plan;
  const double before = m.Coefficient("scale.sweep");
  // Measured slower than predicted: the scale factor must move up.
  m.ObserveSweepSeconds(w, plan, 10.0 * m.PredictSweepSeconds(w, plan));
  EXPECT_GT(m.Coefficient("scale.sweep"), before);
  // Garbage observations are ignored.
  m.ObserveSweepSeconds(w, plan, -1.0);
  m.ObserveSweepSeconds(w, plan, 0.0);
}

// ---------------------------------------------------------------------------
// Tuner.
// ---------------------------------------------------------------------------

TEST(TunerTest, DeterministicAndNeverPicksJacobiOnLargeGrams) {
  CostModel m;
  const WorkloadSignature w = VideoSignature();
  const adaptive::PlanDecision d1 = adaptive::ChoosePlan(m, w);
  const adaptive::PlanDecision d2 = adaptive::ChoosePlan(m, w);
  EXPECT_TRUE(d1.plan == d2.plan);
  EXPECT_NE(d1.plan.eig, EigSolverVariant::kJacobi);
  EXPECT_FALSE(d1.rationale.empty());
  EXPECT_GT(d1.predicted_total_seconds, 0.0);
}

TEST(TunerTest, SketchedGramRequiresErrorBudget) {
  CostModel m;
  // Make the sketched Gram look arbitrarily attractive; without a budget
  // the tuner must still not pick it.
  m.SetCoefficient("gram.sketched", 1e6);
  WorkloadSignature w = VideoSignature();
  adaptive::TunerOptions opt;
  opt.sketch_error_budget = 0.0;
  EXPECT_EQ(adaptive::ChoosePlan(m, w, opt).plan.gram, GramVariant::kExact);
}

// ---------------------------------------------------------------------------
// End-to-end through the Engine: fit parity, determinism, auto policy.
// ---------------------------------------------------------------------------

EngineOptions BaseOptions(const std::vector<Index>& ranks, int iters = 12) {
  EngineOptions opt;
  opt.method = TuckerMethod::kDTucker;
  opt.method_options.tucker.ranks = ranks;
  opt.method_options.tucker.max_iterations = iters;
  opt.measure_error = true;
  return opt;
}

Result<EngineRun> SolveWithSpec(const Tensor& x, const std::string& spec,
                                int threads = 0) {
  EngineOptions opt = BaseOptions({4, 4, 4});
  opt.solver_spec = spec;
  if (threads > 0) {
    opt.blas_threads = threads;
    opt.method_options.num_threads = threads;
  }
  Engine engine(std::move(opt));
  return engine.Solve(x);
}

TEST(AdaptiveEngineTest, FitParityAcrossVariantPlans) {
  const Tensor x = MakeLowRankTensor({26, 22, 18}, {4, 4, 4}, 0.3, 5);
  Result<EngineRun> base = SolveWithSpec(x, "");
  ASSERT_TRUE(base.ok()) << base.status().ToString();
  const double base_error = base.value().relative_error;
  ASSERT_GT(base_error, 0.0);
  // Every interchangeable variant must land on the same converged fit to 4
  // significant digits — they change *how* each phase computes, never what
  // it computes (the sketched Gram only perturbs the HOOI starting point).
  for (const char* spec :
       {"eig=jacobi", "eig=ql", "eig=subspace", "qr=scalar", "qr=blocked",
        "carrier=slice_parallel", "carrier=gemm_parallel", "gram=sketched",
        "eig=jacobi,qr=scalar,carrier=gemm_parallel"}) {
    Result<EngineRun> run = SolveWithSpec(x, spec);
    ASSERT_TRUE(run.ok()) << spec << ": " << run.status().ToString();
    EXPECT_NEAR(run.value().relative_error, base_error, 5e-4 * base_error)
        << spec;
  }
}

void ExpectBitwiseEqual(const TuckerDecomposition& a,
                        const TuckerDecomposition& b, const char* what) {
  ASSERT_EQ(a.factors.size(), b.factors.size()) << what;
  for (std::size_t n = 0; n < a.factors.size(); ++n) {
    for (Index i = 0; i < a.factors[n].size(); ++i) {
      ASSERT_EQ(a.factors[n].data()[i], b.factors[n].data()[i])
          << what << ": factor " << n << " element " << i;
    }
  }
  ASSERT_EQ(a.core.shape(), b.core.shape()) << what;
  for (Index i = 0; i < a.core.size(); ++i) {
    ASSERT_EQ(a.core.data()[i], b.core.data()[i])
        << what << ": core element " << i;
  }
}

TEST(AdaptiveEngineTest, FixedPlansAreBitwiseThreadDeterministic) {
  const Tensor x = MakeLowRankTensor({24, 20, 14}, {4, 4, 4}, 0.2, 9);
  for (const char* spec :
       {"", "eig=subspace,qr=blocked,carrier=slice_parallel",
        "carrier=gemm_parallel", "gram=sketched"}) {
    Result<EngineRun> one = SolveWithSpec(x, spec, /*threads=*/1);
    Result<EngineRun> four = SolveWithSpec(x, spec, /*threads=*/4);
    ASSERT_TRUE(one.ok() && four.ok()) << spec;
    ExpectBitwiseEqual(one.value().decomposition, four.value().decomposition,
                       spec);
  }
  SetBlasThreads(1);
}

TEST(AdaptiveEngineTest, AutoPolicyRunsAndRecordsDecision) {
  const Tensor x = MakeLowRankTensor({30, 26, 20}, {4, 4, 4}, 0.2, 3);
  EngineOptions opt = BaseOptions({4, 4, 4});
  opt.solver_policy = SolverPolicy::kAuto;
  Engine engine(std::move(opt));
  Result<EngineRun> run = engine.Solve(x);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  const TuckerStats& stats = run.value().stats;
  EXPECT_FALSE(stats.selected_variants.empty());
  EXPECT_FALSE(stats.solver_rationale.empty());
  EXPECT_GT(stats.predicted_init_seconds, 0.0);
  EXPECT_GT(stats.predicted_sweep_seconds, 0.0);
  // The chosen plan must parse back through the registry (it names only
  // registered variants).
  EXPECT_TRUE(adaptive::ParsePlan(stats.selected_variants).ok());
}

TEST(AdaptiveEngineTest, AutoMatchesDefaultFitAndBoundedTime) {
  const Tensor x = MakeLowRankTensor({30, 26, 20}, {4, 4, 4}, 0.2, 3);
  Result<EngineRun> fixed = SolveWithSpec(x, "");
  ASSERT_TRUE(fixed.ok());
  EngineOptions opt = BaseOptions({4, 4, 4});
  opt.solver_policy = SolverPolicy::kAuto;
  Engine engine(std::move(opt));
  Result<EngineRun> run = engine.Solve(x);
  ASSERT_TRUE(run.ok());
  // Whatever plan auto picks, the converged fit matches the defaults to 4
  // significant digits (fit parity is plan-independent).
  EXPECT_NEAR(run.value().relative_error, fixed.value().relative_error,
              5e-4 * fixed.value().relative_error);
}

TEST(AdaptiveEngineTest, AutoDegradesGracefullyOnBadCalibration) {
  const Tensor x = MakeLowRankTensor({22, 18, 14}, {3, 3, 3}, 0.2, 7);
  const std::string corrupt = WriteTempFile("engine_corrupt", "{not json!");
  for (const std::string& path :
       {std::string("/nonexistent/calibration.json"), corrupt}) {
    EngineOptions opt = BaseOptions({3, 3, 3});
    opt.solver_policy = SolverPolicy::kAuto;
    opt.calibration_path = path;
    Engine engine(std::move(opt));
    Result<EngineRun> run = engine.Solve(x);
    ASSERT_TRUE(run.ok()) << path << ": " << run.status().ToString();
    EXPECT_FALSE(run.value().stats.selected_variants.empty());
  }
  std::remove(corrupt.c_str());
}

TEST(AdaptiveEngineTest, CleanShutdownPersistsRefinedCalibration) {
  // An auto-policy engine that refined its model from measured phase times
  // writes the coefficients back to calibration_path on destruction, and
  // the written file round-trips through LoadCalibration.
  const Tensor x = MakeLowRankTensor({22, 18, 14}, {3, 3, 3}, 0.2, 8);
  const std::string path =
      ::testing::TempDir() + "adaptive_test_persist.json";
  std::remove(path.c_str());
  {
    EngineOptions opt = BaseOptions({3, 3, 3});
    opt.solver_policy = SolverPolicy::kAuto;
    opt.calibration_path = path;
    Engine engine(std::move(opt));
    Result<EngineRun> run = engine.Solve(x);
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    // Nothing is written while the engine lives: persistence is a
    // shutdown-time action (atomic temp + rename).
    std::FILE* probe = std::fopen(path.c_str(), "r");
    EXPECT_EQ(probe, nullptr);
    if (probe != nullptr) std::fclose(probe);
  }
  CostModel reloaded;
  EXPECT_TRUE(reloaded.LoadCalibration(path)) << path;
  std::remove(path.c_str());
}

TEST(AdaptiveEngineTest, CancelledEngineSkipsCalibrationPersistence) {
  // A cancelled session may have observed truncated phase times; its
  // destructor must not clobber the calibration file.
  const Tensor x = MakeLowRankTensor({22, 18, 14}, {3, 3, 3}, 0.2, 8);
  const std::string path =
      ::testing::TempDir() + "adaptive_test_persist_cancel.json";
  std::remove(path.c_str());
  {
    EngineOptions opt = BaseOptions({3, 3, 3});
    opt.solver_policy = SolverPolicy::kAuto;
    opt.calibration_path = path;
    Engine engine(std::move(opt));
    Result<EngineRun> run = engine.Solve(x);
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    engine.RequestCancel();
  }
  std::FILE* f = std::fopen(path.c_str(), "r");
  EXPECT_EQ(f, nullptr) << "cancelled engine wrote " << path;
  if (f != nullptr) std::fclose(f);
}

TEST(AdaptiveEngineTest, PersistCalibrationRequiresAPath) {
  Engine engine;  // No calibration_path configured.
  EXPECT_EQ(engine.PersistCalibration().code(),
            StatusCode::kInvalidArgument);
}

TEST(AdaptiveEngineTest, FixedPolicyEngineDoesNotPersist) {
  // The fixed policy never refines the model, so a configured path must
  // stay untouched (calibration_dirty_ never set).
  const Tensor x = MakeLowRankTensor({18, 16, 12}, {3, 3, 3}, 0.2, 9);
  const std::string path =
      ::testing::TempDir() + "adaptive_test_persist_fixed.json";
  std::remove(path.c_str());
  {
    EngineOptions opt = BaseOptions({3, 3, 3});
    opt.calibration_path = path;  // solver_policy stays kFixed.
    Engine engine(std::move(opt));
    ASSERT_TRUE(engine.Solve(x).ok());
  }
  std::FILE* f = std::fopen(path.c_str(), "r");
  EXPECT_EQ(f, nullptr) << "fixed-policy engine wrote " << path;
  if (f != nullptr) std::fclose(f);
}

TEST(AdaptiveEngineTest, ShardedFixedPlanIsBitwiseIdenticalAcrossRankCounts) {
  // Within the sharded reduction scheme a fixed variant plan must not
  // disturb the cross-rank-count bitwise identity (the Gram axis is
  // deliberately ignored there; eig/qr/carrier are rank-independent).
  const Tensor x = MakeLowRankTensor({20, 16, 12}, {3, 3, 3}, 0.2, 4);
  std::vector<TuckerDecomposition> runs;
  for (int ranks : {1, 2}) {
    EngineOptions opt = BaseOptions({3, 3, 3});
    opt.solver_spec = "eig=subspace,qr=blocked";
    opt.num_ranks = ranks;
    Engine engine(std::move(opt));
    Result<EngineRun> run = engine.Solve(x);
    ASSERT_TRUE(run.ok()) << ranks << ": " << run.status().ToString();
    runs.push_back(std::move(run.value().decomposition));
  }
  ExpectBitwiseEqual(runs[0], runs[1], "num_ranks 1 vs 2");
}

}  // namespace
}  // namespace dtucker
