#include <gtest/gtest.h>

#include <cmath>

#include "baselines/mach.h"
#include "baselines/registry.h"
#include "baselines/rtd.h"
#include "baselines/tucker_ts.h"
#include "common/rng.h"
#include "data/generators.h"
#include "linalg/blas.h"

namespace dtucker {
namespace {

Tensor TestTensor(double noise = 0.0, uint64_t seed = 1) {
  return MakeLowRankTensor({16, 14, 12}, {3, 3, 3}, noise, seed);
}

// --- MACH ---

TEST(MachTest, SampleRateValidated) {
  Tensor x = TestTensor();
  EXPECT_FALSE(MachSample(x, 0.0, 1).ok());
  EXPECT_FALSE(MachSample(x, 1.5, 1).ok());
}

TEST(MachTest, SampleIsUnbiasedInExpectation) {
  Tensor x = TestTensor(0.0, 2);
  // Mean of many sampled tensors approaches x entrywise; check total mass.
  double total = 0;
  const int trials = 30;
  for (int t = 0; t < trials; ++t) {
    Result<SparseTensor> sp = MachSample(x, 0.3, 100 + t);
    ASSERT_TRUE(sp.ok());
    Tensor d = sp.value().ToDense();
    total += InnerProduct(d, x);
  }
  total /= trials;
  EXPECT_NEAR(total, x.SquaredNorm(), 0.05 * x.SquaredNorm());
}

TEST(MachTest, SampleCountNearExpectation) {
  Tensor x = TestTensor(0.0, 3);
  Result<SparseTensor> sp = MachSample(x, 0.2, 5);
  ASSERT_TRUE(sp.ok());
  const double expected = 0.2 * static_cast<double>(x.size());
  EXPECT_NEAR(static_cast<double>(sp.value().nnz()), expected,
              4 * std::sqrt(expected));
}

TEST(MachTest, FullSampleRateRecoversExactly) {
  Tensor x = TestTensor(0.0, 4);
  MachOptions opt;
  opt.ranks = {3, 3, 3};
  opt.sample_rate = 1.0;  // No information lost.
  opt.max_iterations = 25;
  Result<TuckerDecomposition> dec = Mach(x, opt);
  ASSERT_TRUE(dec.ok());
  EXPECT_LT(dec.value().RelativeErrorAgainst(x), 1e-8);
}

TEST(MachTest, ModerateSamplingHasBoundedErrorInflation) {
  Tensor x = TestTensor(0.1, 5);
  MachOptions opt;
  opt.ranks = {3, 3, 3};
  opt.sample_rate = 0.5;
  opt.max_iterations = 20;
  TuckerStats stats;
  Result<TuckerDecomposition> dec = Mach(x, opt, &stats);
  ASSERT_TRUE(dec.ok());
  // MACH trades accuracy for speed: error should be small-ish but need not
  // match ALS.
  EXPECT_LT(dec.value().RelativeErrorAgainst(x), 0.30);
  EXPECT_GT(stats.working_bytes, 0u);
}

// --- RTD ---

TEST(RtdTest, ExactOnLowRank) {
  Tensor x = TestTensor(0.0, 6);
  RtdOptions opt;
  opt.ranks = {3, 3, 3};
  Result<TuckerDecomposition> dec = Rtd(x, opt);
  ASSERT_TRUE(dec.ok());
  EXPECT_LT(dec.value().RelativeErrorAgainst(x), 1e-10);
}

TEST(RtdTest, FactorsOrthonormal) {
  Tensor x = TestTensor(0.2, 7);
  RtdOptions opt;
  opt.ranks = {3, 2, 4};
  Result<TuckerDecomposition> dec = Rtd(x, opt);
  ASSERT_TRUE(dec.ok());
  for (const auto& f : dec.value().factors) {
    EXPECT_TRUE(AlmostEqual(MultiplyTN(f, f), Matrix::Identity(f.cols()),
                            1e-8));
  }
  EXPECT_EQ(dec.value().core.shape(), (std::vector<Index>{3, 2, 4}));
}

TEST(RtdTest, RejectsBadRanks) {
  Tensor x = TestTensor();
  RtdOptions opt;
  opt.ranks = {99, 3, 3};
  EXPECT_FALSE(Rtd(x, opt).ok());
}

// --- Tucker-ts / Tucker-ttmts ---

TEST(TuckerTsTest, RecoversLowRankSignal) {
  Tensor x = TestTensor(0.0, 8);
  TuckerTsOptions opt;
  opt.ranks = {3, 3, 3};
  opt.max_iterations = 15;
  opt.sketch_factor = 8.0;
  Result<TuckerDecomposition> dec = TuckerTs(x, opt);
  ASSERT_TRUE(dec.ok());
  EXPECT_LT(dec.value().RelativeErrorAgainst(x), 0.01);
}

TEST(TuckerTsTest, StatsTrackSketchBytes) {
  Tensor x = TestTensor(0.1, 9);
  TuckerTsOptions opt;
  opt.ranks = {3, 3, 3};
  opt.max_iterations = 5;
  TuckerStats stats;
  Result<TuckerDecomposition> dec = TuckerTs(x, opt, &stats);
  ASSERT_TRUE(dec.ok());
  EXPECT_GT(stats.preprocess_seconds, 0.0);
  EXPECT_GT(stats.working_bytes, 0u);
}

TEST(TuckerTtmtsTest, RecoversLowRankSignal) {
  Tensor x = TestTensor(0.0, 10);
  TuckerTsOptions opt;
  opt.ranks = {3, 3, 3};
  opt.max_iterations = 15;
  opt.sketch_factor = 8.0;
  Result<TuckerDecomposition> dec = TuckerTtmts(x, opt);
  ASSERT_TRUE(dec.ok());
  // ttmts has a sketch-noise floor ~1/sqrt(s) even on exact-rank data.
  EXPECT_LT(dec.value().RelativeErrorAgainst(x), 0.12);
}

TEST(TuckerTtmtsTest, FactorsOrthonormal) {
  Tensor x = TestTensor(0.2, 11);
  TuckerTsOptions opt;
  opt.ranks = {3, 3, 3};
  opt.max_iterations = 6;
  Result<TuckerDecomposition> dec = TuckerTtmts(x, opt);
  ASSERT_TRUE(dec.ok());
  for (const auto& f : dec.value().factors) {
    EXPECT_TRUE(AlmostEqual(MultiplyTN(f, f), Matrix::Identity(f.cols()),
                            1e-8));
  }
}

// --- Registry ---

TEST(RegistryTest, NamesRoundTrip) {
  for (TuckerMethod m : AllTuckerMethods()) {
    Result<TuckerMethod> parsed = ParseTuckerMethod(TuckerMethodName(m));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), m);
  }
  EXPECT_FALSE(ParseTuckerMethod("nope").ok());
}

// Every registered method runs end-to-end on a small noisy tensor and
// produces a sane decomposition.
class RegistryParamTest : public ::testing::TestWithParam<TuckerMethod> {};

TEST_P(RegistryParamTest, RunsEndToEnd) {
  Tensor x = MakeLowRankTensor({14, 12, 10}, {3, 3, 3}, 0.1, 12);
  MethodOptions opt;
  opt.tucker.ranks = {3, 3, 3};
  opt.tucker.max_iterations = 10;
  opt.mach_sample_rate = 0.5;
  opt.sketch_factor = 8.0;
  Result<MethodRun> run = RunTuckerMethod(GetParam(), x, opt);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run.value().decomposition.core.shape(),
            (std::vector<Index>{3, 3, 3}));
  EXPECT_LT(run.value().relative_error, 0.5)
      << TuckerMethodName(GetParam());
  EXPECT_GT(run.value().stored_bytes, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllMethods, RegistryParamTest,
    ::testing::ValuesIn(AllTuckerMethods()),
    [](const ::testing::TestParamInfo<TuckerMethod>& info) {
      std::string name = TuckerMethodName(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(RegistryTest, DTuckerStoresLessThanInput) {
  Tensor x = MakeLowRankTensor({30, 26, 20}, {3, 3, 3}, 0.1, 13);
  MethodOptions opt;
  opt.tucker.ranks = {3, 3, 3};
  opt.tucker.max_iterations = 5;
  Result<MethodRun> dt = RunTuckerMethod(TuckerMethod::kDTucker, x, opt);
  Result<MethodRun> als = RunTuckerMethod(TuckerMethod::kTuckerAls, x, opt);
  ASSERT_TRUE(dt.ok() && als.ok());
  EXPECT_LT(dt.value().stored_bytes, als.value().stored_bytes);
}

}  // namespace
}  // namespace dtucker
