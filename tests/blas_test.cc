#include "linalg/blas.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace dtucker {
namespace {

// Reference O(n^3) triple-loop multiply for cross-checking the blocked
// kernel.
Matrix NaiveMultiply(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols());
  for (Index i = 0; i < a.rows(); ++i) {
    for (Index j = 0; j < b.cols(); ++j) {
      double s = 0;
      for (Index k = 0; k < a.cols(); ++k) s += a(i, k) * b(k, j);
      c(i, j) = s;
    }
  }
  return c;
}

TEST(BlasTest, MultiplySmallKnown) {
  Matrix a({{1, 2}, {3, 4}});
  Matrix b({{5, 6}, {7, 8}});
  Matrix c = Multiply(a, b);
  EXPECT_TRUE(AlmostEqual(c, Matrix({{19, 22}, {43, 50}})));
}

TEST(BlasTest, MultiplyIdentityIsNoop) {
  Rng rng(1);
  Matrix a = Matrix::GaussianRandom(7, 5, rng);
  EXPECT_TRUE(AlmostEqual(Multiply(a, Matrix::Identity(5)), a));
  EXPECT_TRUE(AlmostEqual(Multiply(Matrix::Identity(7), a), a));
}

// Property sweep: the blocked GEMM agrees with the naive kernel for all
// transpose combinations across assorted shapes (including ones larger
// than the cache block size).
struct GemmCase {
  Index m, n, k;
};

class GemmParamTest : public ::testing::TestWithParam<GemmCase> {};

TEST_P(GemmParamTest, AllTransposeCombosMatchNaive) {
  const GemmCase c = GetParam();
  Rng rng(42 + c.m + c.n + c.k);
  Matrix a = Matrix::GaussianRandom(c.m, c.k, rng);
  Matrix b = Matrix::GaussianRandom(c.k, c.n, rng);
  Matrix expected = NaiveMultiply(a, b);

  EXPECT_TRUE(AlmostEqual(Multiply(a, b), expected, 1e-9));
  EXPECT_TRUE(AlmostEqual(MultiplyTN(a.Transposed(), b), expected, 1e-9));
  EXPECT_TRUE(AlmostEqual(MultiplyNT(a, b.Transposed()), expected, 1e-9));
  EXPECT_TRUE(AlmostEqual(MultiplyTT(a.Transposed(), b.Transposed()),
                          expected, 1e-9));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmParamTest,
    ::testing::Values(GemmCase{1, 1, 1}, GemmCase{3, 5, 4}, GemmCase{5, 3, 9},
                      GemmCase{17, 13, 11}, GemmCase{64, 64, 64},
                      GemmCase{100, 3, 300}, GemmCase{3, 100, 300},
                      GemmCase{300, 5, 2}, GemmCase{129, 65, 257},
                      GemmCase{260, 7, 300}));

TEST(BlasTest, GemmAlphaBetaAccumulate) {
  Rng rng(7);
  Matrix a = Matrix::GaussianRandom(6, 4, rng);
  Matrix b = Matrix::GaussianRandom(4, 5, rng);
  Matrix c = Matrix::GaussianRandom(6, 5, rng);
  Matrix expected = c * 3.0 + NaiveMultiply(a, b) * 2.0;
  Gemm(Trans::kNo, Trans::kNo, 2.0, a, b, 3.0, &c);
  EXPECT_TRUE(AlmostEqual(c, expected, 1e-10));
}

TEST(BlasTest, GemmBetaZeroOverwritesGarbage) {
  Rng rng(8);
  Matrix a = Matrix::GaussianRandom(4, 4, rng);
  Matrix b = Matrix::GaussianRandom(4, 4, rng);
  Matrix c = Matrix::Constant(4, 4, std::numeric_limits<double>::quiet_NaN());
  Gemm(Trans::kNo, Trans::kNo, 1.0, a, b, 0.0, &c);
  EXPECT_TRUE(AlmostEqual(c, NaiveMultiply(a, b), 1e-10));
}

TEST(BlasTest, GemvBothTransposes) {
  Rng rng(9);
  Matrix a = Matrix::GaussianRandom(6, 4, rng);
  Matrix x = Matrix::GaussianRandom(4, 1, rng);
  Matrix y(6, 1);
  GemvRaw(Trans::kNo, 6, 4, 1.0, a.data(), 6, x.data(), 0.0, y.data());
  EXPECT_TRUE(AlmostEqual(y, NaiveMultiply(a, x), 1e-10));

  Matrix z = Matrix::GaussianRandom(6, 1, rng);
  Matrix w(4, 1);
  GemvRaw(Trans::kYes, 6, 4, 1.0, a.data(), 6, z.data(), 0.0, w.data());
  EXPECT_TRUE(AlmostEqual(w, NaiveMultiply(a.Transposed(), z), 1e-10));
}

TEST(BlasTest, DotAxpyScalNrm2) {
  std::vector<double> x = {1, 2, 3, 4, 5};
  std::vector<double> y = {5, 4, 3, 2, 1};
  EXPECT_DOUBLE_EQ(Dot(x.data(), y.data(), 5), 35.0);

  Axpy(2.0, x.data(), y.data(), 5);
  EXPECT_DOUBLE_EQ(y[0], 7.0);
  EXPECT_DOUBLE_EQ(y[4], 11.0);

  Scal(0.5, x.data(), 5);
  EXPECT_DOUBLE_EQ(x[2], 1.5);

  std::vector<double> v = {3, 4};
  EXPECT_DOUBLE_EQ(Nrm2(v.data(), 2), 5.0);
}

TEST(BlasTest, Nrm2AvoidsOverflow) {
  std::vector<double> v = {1e200, 1e200};
  EXPECT_NEAR(Nrm2(v.data(), 2) / 1.4142135623730951e200, 1.0, 1e-12);
}

TEST(BlasTest, GramMatchesExplicit) {
  Rng rng(10);
  Matrix a = Matrix::GaussianRandom(20, 6, rng);
  Matrix g = Gram(a);
  EXPECT_TRUE(AlmostEqual(g, MultiplyTN(a, a), 1e-10));
  // Symmetry is exact by construction.
  for (Index i = 0; i < 6; ++i) {
    for (Index j = 0; j < 6; ++j) EXPECT_EQ(g(i, j), g(j, i));
  }
}

}  // namespace
}  // namespace dtucker
