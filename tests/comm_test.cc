#include "comm/communicator.h"

#include <gtest/gtest.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "comm/sharding.h"
#include "common/metrics.h"
#include "common/run_context.h"

namespace dtucker {
namespace {

// Fresh shm segment name per call: tests in one binary (and one test
// re-run racing a crashed predecessor's unlink) must not collide.
std::string FreshShmName() {
  static int counter = 0;
  return "/dtucker-test-" + std::to_string(::getpid()) + "-" +
         std::to_string(counter++);
}

// Runs `body(comm)` on every rank of a shm-transport group, each rank on
// its own thread. Rank 0's communicator is created first (it owns the
// segment); peers are created serially after it, so setup failures are
// synchronous.
std::vector<Status> RunShmRanks(
    int size, const std::function<Status(Communicator*)>& body) {
  const std::string name = FreshShmName();
  std::vector<std::unique_ptr<Communicator>> comms;
  for (int r = 0; r < size; ++r) {
    Result<std::unique_ptr<Communicator>> c =
        CreateShmCommunicator(name, r, size);
    if (!c.ok()) {
      return std::vector<Status>(static_cast<std::size_t>(size), c.status());
    }
    comms.push_back(std::move(c).ValueOrDie());
  }
  std::vector<Status> statuses(static_cast<std::size_t>(size), Status::OK());
  std::vector<std::thread> threads;
  for (int r = 1; r < size; ++r) {
    threads.emplace_back([&, r] { statuses[r] = body(comms[r].get()); });
  }
  statuses[0] = body(comms[0].get());
  for (auto& t : threads) t.join();
  return statuses;
}

// Runs `body(comm)` on every rank of an in-process group, each rank on its
// own thread, and returns the per-rank statuses.
std::vector<Status> RunRanks(int size,
                             const std::function<Status(Communicator*)>& body) {
  auto group = InProcessGroup::Create(size);
  std::vector<Status> statuses(static_cast<std::size_t>(size), Status::OK());
  std::vector<std::thread> threads;
  for (int r = 1; r < size; ++r) {
    threads.emplace_back([&, r] { statuses[r] = body(group->comm(r)); });
  }
  statuses[0] = body(group->comm(0));
  for (auto& t : threads) t.join();
  return statuses;
}

void ExpectAllOk(const std::vector<Status>& statuses) {
  for (std::size_t r = 0; r < statuses.size(); ++r) {
    EXPECT_TRUE(statuses[r].ok()) << "rank " << r << ": "
                                  << statuses[r].ToString();
  }
}

TEST(CommTest, BarrierAllSizes) {
  for (int size : {1, 2, 3, 4}) {
    ExpectAllOk(RunRanks(size, [](Communicator* comm) {
      for (int i = 0; i < 3; ++i) DT_RETURN_NOT_OK(comm->Barrier());
      return Status::OK();
    }));
  }
}

TEST(CommTest, BroadcastReplicatesRoot) {
  for (int size : {1, 2, 4}) {
    std::vector<std::vector<double>> got(static_cast<std::size_t>(size));
    ExpectAllOk(RunRanks(size, [&](Communicator* comm) {
      std::vector<double> buf = {0, 0, 0};
      if (comm->rank() == 0) buf = {1.5, -2.0, 3.25};
      DT_RETURN_NOT_OK(comm->Broadcast(buf.data(), buf.size(), 0));
      got[comm->rank()] = buf;
      return Status::OK();
    }));
    for (int r = 0; r < size; ++r) {
      EXPECT_EQ(got[r], (std::vector<double>{1.5, -2.0, 3.25})) << "rank " << r;
    }
  }
}

TEST(CommTest, BroadcastNonZeroRoot) {
  std::vector<double> got(3, 0.0);
  ExpectAllOk(RunRanks(3, [&](Communicator* comm) {
    double v = comm->rank() == 2 ? 7.0 : 0.0;
    DT_RETURN_NOT_OK(comm->Broadcast(&v, 1, 2));
    got[comm->rank()] = v;
    return Status::OK();
  }));
  EXPECT_EQ(got, (std::vector<double>{7.0, 7.0, 7.0}));
}

TEST(CommTest, AllReduceSumMatchesBinomialTree) {
  // Four contributions whose sum depends on grouping; the contract pins
  // the binomial tree (r1->r0, r3->r2 at distance 1, then r2->r0), i.e.
  // ((a0 + a1) + (a2 + a3)) with receiver += sender.
  const std::vector<double> a = {1.0 / 3, 1.0 / 7, 1.0 / 11, 1.0 / 13};
  const double expected = (a[0] + a[1]) + (a[2] + a[3]);
  std::vector<double> got(4, 0.0);
  ExpectAllOk(RunRanks(4, [&](Communicator* comm) {
    double v = a[static_cast<std::size_t>(comm->rank())];
    DT_RETURN_NOT_OK(comm->AllReduceSum(&v, 1));
    got[comm->rank()] = v;
    return Status::OK();
  }));
  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(got[r], expected) << "rank " << r;  // Bitwise, not approximate.
  }
}

TEST(CommTest, AllReduceSumMatrixAndRepeatability) {
  for (int size : {1, 2, 3, 4}) {
    std::vector<Matrix> first(static_cast<std::size_t>(size));
    for (int repeat = 0; repeat < 2; ++repeat) {
      std::vector<Matrix> got(static_cast<std::size_t>(size));
      ExpectAllOk(RunRanks(size, [&](Communicator* comm) {
        Matrix m(2, 3);
        for (Index i = 0; i < m.size(); ++i) {
          m.data()[i] = 1.0 / (1 + comm->rank()) + 0.01 * i;
        }
        DT_RETURN_NOT_OK(comm->AllReduceSum(&m));
        got[comm->rank()] = m;
        return Status::OK();
      }));
      if (repeat == 0) {
        first = got;
      } else {
        for (int r = 0; r < size; ++r) {
          for (Index i = 0; i < got[r].size(); ++i) {
            EXPECT_EQ(got[r].data()[i], first[r].data()[i])
                << "size " << size << " rank " << r;
          }
        }
      }
      // Every rank exits with rank 0's bits.
      for (int r = 1; r < size; ++r) {
        for (Index i = 0; i < got[r].size(); ++i) {
          EXPECT_EQ(got[r].data()[i], got[0].data()[i]);
        }
      }
    }
  }
}

TEST(CommTest, AllReduceMax) {
  std::vector<double> got(4, 0.0);
  ExpectAllOk(RunRanks(4, [&](Communicator* comm) {
    double v[2] = {static_cast<double>(comm->rank()),
                   -static_cast<double>(comm->rank())};
    DT_RETURN_NOT_OK(comm->AllReduceMax(v, 2));
    EXPECT_EQ(v[1], 0.0);
    got[comm->rank()] = v[0];
    return Status::OK();
  }));
  EXPECT_EQ(got, (std::vector<double>{3, 3, 3, 3}));
}

TEST(CommTest, GatherConcatenatesInRankOrder) {
  std::vector<double> recv(4 * 2, -1.0);
  ExpectAllOk(RunRanks(4, [&](Communicator* comm) {
    double send[2] = {10.0 + comm->rank(), 20.0 + comm->rank()};
    DT_RETURN_NOT_OK(
        comm->Gather(send, 2, comm->rank() == 0 ? recv.data() : nullptr, 0));
    return Status::OK();
  }));
  EXPECT_EQ(recv, (std::vector<double>{10, 20, 11, 21, 12, 22, 13, 23}));
}

TEST(CommTest, AllGatherVWithZeroCounts) {
  // Rank 1 contributes nothing (a degenerate shard); everyone still exits
  // with the identical concatenation.
  const std::vector<std::size_t> counts = {2, 0, 3};
  std::vector<std::vector<double>> got(3);
  ExpectAllOk(RunRanks(3, [&](Communicator* comm) {
    std::vector<double> send;
    for (std::size_t i = 0; i < counts[comm->rank()]; ++i) {
      send.push_back(100.0 * comm->rank() + i);
    }
    std::vector<double> recv(5, -1.0);
    DT_RETURN_NOT_OK(comm->AllGatherV(send.data(), counts, recv.data()));
    got[comm->rank()] = recv;
    return Status::OK();
  }));
  for (int r = 0; r < 3; ++r) {
    EXPECT_EQ(got[r], (std::vector<double>{0, 1, 200, 201, 202})) << "rank "
                                                                  << r;
  }
}

TEST(CommTest, MissingPeerTimesOutAsUnavailable) {
  // Only rank 0 enters the collective; the wait must end in kUnavailable
  // after the (short) timeout instead of deadlocking.
  auto group = InProcessGroup::Create(2);
  Communicator* comm = group->comm(0);
  comm->set_timeout_seconds(0.2);
  double v = 1.0;
  Status st = comm->AllReduceSum(&v, 1);
  EXPECT_EQ(st.code(), StatusCode::kUnavailable) << st.ToString();
}

TEST(CommTest, RunContextCancelsBlockedCollective) {
  auto group = InProcessGroup::Create(2);
  RunContext ctx;
  ctx.RequestCancel();
  Communicator* comm = group->comm(0);
  comm->set_run_context(&ctx);
  Status st = comm->Barrier();
  EXPECT_EQ(st.code(), StatusCode::kCancelled) << st.ToString();
}

TEST(CommTest, FileCommunicatorAcrossProcesses) {
  // The no-MPI multi-process transport: fork real child processes that
  // meet the parent in a shared directory.
  char tmpl[] = "/tmp/dtucker_comm_test_XXXXXX";
  ASSERT_NE(::mkdtemp(tmpl), nullptr);
  const std::string dir = tmpl;
  const int size = 3;

  auto run_rank = [&](int rank) -> Status {
    Result<std::unique_ptr<Communicator>> comm =
        CreateFileCommunicator(dir, rank, size);
    DT_RETURN_NOT_OK(comm.status());
    comm.value()->set_timeout_seconds(30.0);
    double v = 1.0 + rank;  // 1 + 2 + 3 = 6.
    DT_RETURN_NOT_OK(comm.value()->AllReduceSum(&v, 1));
    if (v != 6.0) return Status::InvalidArgument("bad reduce value");
    double b = rank == 1 ? 42.0 : 0.0;
    DT_RETURN_NOT_OK(comm.value()->Broadcast(&b, 1, 1));
    if (b != 42.0) return Status::InvalidArgument("bad broadcast value");
    return comm.value()->Barrier();
  };

  std::vector<pid_t> children;
  for (int rank = 1; rank < size; ++rank) {
    pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      // Child: exit code carries success/failure; _exit avoids running
      // gtest teardown in the fork.
      ::_exit(run_rank(rank).ok() ? 0 : 1);
    }
    children.push_back(pid);
  }
  Status st = run_rank(0);
  EXPECT_TRUE(st.ok()) << st.ToString();
  for (pid_t pid : children) {
    int wstatus = 0;
    ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
    EXPECT_TRUE(WIFEXITED(wstatus) && WEXITSTATUS(wstatus) == 0);
  }
  std::string cleanup = "rm -rf '" + dir + "'";
  ASSERT_EQ(std::system(cleanup.c_str()), 0);
}

TEST(CommTransportTest, NamesRoundTrip) {
  for (CommTransport t : {CommTransport::kInProcess, CommTransport::kFile,
                          CommTransport::kShm}) {
    Result<CommTransport> parsed = ParseCommTransport(CommTransportName(t));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), t);
  }
  EXPECT_FALSE(ParseCommTransport("tcp").ok());
  EXPECT_FALSE(ParseCommTransport("").ok());
}

TEST(ShmCommTest, RejectsBadArguments) {
  EXPECT_FALSE(CreateShmCommunicator("no-leading-slash", 0, 2).ok());
  EXPECT_FALSE(CreateShmCommunicator("/a/b", 0, 2).ok());
  EXPECT_FALSE(CreateShmCommunicator("/ok", 2, 2).ok());   // rank range.
  EXPECT_FALSE(CreateShmCommunicator("/ok", -1, 2).ok());
  EXPECT_FALSE(CreateShmCommunicator("/ok", 0, 0).ok());
}

TEST(ShmCommTest, MissingRankZeroTimesOutAsUnavailable) {
  // A peer with no creator to meet: the bounded setup poll must surface
  // kUnavailable instead of hanging.
  Result<std::unique_ptr<Communicator>> c = CreateShmCommunicator(
      FreshShmName(), /*rank=*/1, /*size=*/2, /*setup_timeout_seconds=*/0.2);
  ASSERT_FALSE(c.ok());
  EXPECT_EQ(c.status().code(), StatusCode::kUnavailable)
      << c.status().ToString();
}

TEST(ShmCommTest, CollectivesAcrossThreads) {
  for (int size : {1, 2, 3, 4}) {
    std::vector<double> reduced(static_cast<std::size_t>(size), 0.0);
    ExpectAllOk(RunShmRanks(size, [&](Communicator* comm) {
      DT_RETURN_NOT_OK(comm->Barrier());
      double v = 1.0 + comm->rank();
      DT_RETURN_NOT_OK(comm->AllReduceSum(&v, 1));
      reduced[static_cast<std::size_t>(comm->rank())] = v;
      double b = comm->rank() == 0 ? 42.0 : 0.0;
      DT_RETURN_NOT_OK(comm->Broadcast(&b, 1, 0));
      if (b != 42.0) return Status::InvalidArgument("bad broadcast value");
      return comm->Barrier();
    }));
    const double expected = size * (size + 1) / 2.0;
    for (int r = 0; r < size; ++r) {
      EXPECT_EQ(reduced[static_cast<std::size_t>(r)], expected)
          << "size " << size << " rank " << r;
    }
  }
}

TEST(ShmCommTest, ChunkedPayloadLargerThanOneMailbox) {
  // 3 * 8192 + 1234 doubles forces the chunked streaming path (a mailbox
  // carries at most 8192 doubles per generation).
  const std::size_t n = 3 * 8192 + 1234;
  std::vector<std::vector<double>> got(2);
  ExpectAllOk(RunShmRanks(2, [&](Communicator* comm) {
    std::vector<double> buf(n);
    for (std::size_t i = 0; i < n; ++i) {
      buf[i] = (comm->rank() + 1) * 1e-3 * static_cast<double>(i % 97);
    }
    DT_RETURN_NOT_OK(comm->AllReduceSum(buf.data(), n));
    got[static_cast<std::size_t>(comm->rank())] = std::move(buf);
    return Status::OK();
  }));
  ASSERT_EQ(got[0].size(), n);
  for (std::size_t i = 0; i < n; ++i) {
    const double expected = 3e-3 * static_cast<double>(i % 97);
    ASSERT_DOUBLE_EQ(got[0][i], expected) << "i=" << i;
    ASSERT_EQ(got[0][i], got[1][i]) << "i=" << i;
  }
}

TEST(ShmCommTest, BitwiseIdenticalToInProcessAndFileTransports) {
  // The tri-transport contract: identical collective algorithms on every
  // transport, so an awkward non-associative sum reduces to the same bits.
  const int size = 4;
  auto body = [&](Communicator* comm, std::vector<double>* out) -> Status {
    std::vector<double> buf(257);
    for (std::size_t i = 0; i < buf.size(); ++i) {
      buf[i] = 1.0 / (3 + comm->rank()) + 1e-7 * static_cast<double>(i);
    }
    DT_RETURN_NOT_OK(comm->AllReduceSum(buf.data(), buf.size()));
    if (comm->rank() == 0) *out = buf;
    return Status::OK();
  };
  std::vector<double> inproc, shm, file;
  ExpectAllOk(RunRanks(
      size, [&](Communicator* c) { return body(c, &inproc); }));
  ExpectAllOk(RunShmRanks(size, [&](Communicator* c) { return body(c, &shm); }));
  {
    char tmpl[] = "/tmp/dtucker_comm_xport_XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    const std::string dir = tmpl;
    std::vector<std::unique_ptr<Communicator>> comms;
    for (int r = 0; r < size; ++r) {
      Result<std::unique_ptr<Communicator>> c =
          CreateFileCommunicator(dir, r, size);
      ASSERT_TRUE(c.ok()) << c.status().ToString();
      comms.push_back(std::move(c).ValueOrDie());
    }
    std::vector<Status> statuses(size, Status::OK());
    std::vector<std::thread> threads;
    for (int r = 1; r < size; ++r) {
      threads.emplace_back(
          [&, r] { statuses[r] = body(comms[r].get(), &file); });
    }
    statuses[0] = body(comms[0].get(), &file);
    for (auto& t : threads) t.join();
    ExpectAllOk(statuses);
    const std::string cleanup = "rm -rf '" + dir + "'";
    ASSERT_EQ(std::system(cleanup.c_str()), 0);
  }
  ASSERT_EQ(inproc.size(), shm.size());
  ASSERT_EQ(inproc.size(), file.size());
  for (std::size_t i = 0; i < inproc.size(); ++i) {
    EXPECT_EQ(inproc[i], shm[i]) << "i=" << i;     // Bitwise.
    EXPECT_EQ(inproc[i], file[i]) << "i=" << i;
  }
}

TEST(ShmCommTest, RunContextCancelsBlockedCollective) {
  const std::string name = FreshShmName();
  Result<std::unique_ptr<Communicator>> c0 = CreateShmCommunicator(name, 0, 2);
  ASSERT_TRUE(c0.ok()) << c0.status().ToString();
  RunContext ctx;
  ctx.RequestCancel();
  c0.value()->set_run_context(&ctx);
  Status st = c0.value()->Barrier();
  EXPECT_EQ(st.code(), StatusCode::kCancelled) << st.ToString();
}

TEST(ShmCommTest, AcrossForkedProcesses) {
  // The real multi-process case: children fork *before* creating their
  // communicators and meet rank 0 purely through the named segment.
  const std::string name = FreshShmName();
  const int size = 4;

  auto run_rank = [&](int rank) -> Status {
    Result<std::unique_ptr<Communicator>> comm =
        CreateShmCommunicator(name, rank, size);
    DT_RETURN_NOT_OK(comm.status());
    comm.value()->set_timeout_seconds(30.0);
    double v = 1.0 + rank;  // 1 + 2 + 3 + 4 = 10.
    DT_RETURN_NOT_OK(comm.value()->AllReduceSum(&v, 1));
    if (v != 10.0) return Status::InvalidArgument("bad reduce value");
    double b = rank == 1 ? 42.0 : 0.0;
    DT_RETURN_NOT_OK(comm.value()->Broadcast(&b, 1, 1));
    if (b != 42.0) return Status::InvalidArgument("bad broadcast value");
    std::vector<double> big(20000, static_cast<double>(rank));
    DT_RETURN_NOT_OK(comm.value()->AllReduceSum(big.data(), big.size()));
    if (big[123] != 6.0) return Status::InvalidArgument("bad big reduce");
    return comm.value()->Barrier();
  };

  std::vector<pid_t> children;
  for (int rank = 1; rank < size; ++rank) {
    pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      ::_exit(run_rank(rank).ok() ? 0 : 1);
    }
    children.push_back(pid);
  }
  Status st = run_rank(0);
  EXPECT_TRUE(st.ok()) << st.ToString();
  for (pid_t pid : children) {
    int wstatus = 0;
    ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
    EXPECT_TRUE(WIFEXITED(wstatus) && WEXITSTATUS(wstatus) == 0);
  }
}

TEST(CommMetricsTest, CollectivesRecordWaitAndOpCounts) {
  // Satellite contract for comm.wait_ns.* / comm.ops.*: every outermost
  // collective bumps its op counter exactly once (the broadcast nested in
  // AllReduceSum folds into allreduce_sum, not broadcast).
  const std::uint64_t sums_before =
      MetricCounter("comm.ops.allreduce_sum").Value();
  const std::uint64_t bcasts_before =
      MetricCounter("comm.ops.broadcast").Value();
  const std::uint64_t barriers_before =
      MetricCounter("comm.ops.barrier").Value();
  ExpectAllOk(RunRanks(2, [](Communicator* comm) {
    double v = 1.0;
    DT_RETURN_NOT_OK(comm->AllReduceSum(&v, 1));
    return comm->Barrier();
  }));
  EXPECT_EQ(MetricCounter("comm.ops.allreduce_sum").Value() - sums_before, 2u);
  EXPECT_EQ(MetricCounter("comm.ops.broadcast").Value() - bcasts_before, 0u);
  EXPECT_EQ(MetricCounter("comm.ops.barrier").Value() - barriers_before, 2u);
  // Wait gauges exist (>= 0; actual magnitude is timing-dependent).
  EXPECT_GE(MetricGauge("comm.wait_ns.allreduce_sum").Value(), 0.0);
}

TEST(ShardPlanTest, RejectsBadArguments) {
  EXPECT_FALSE(MakeShardPlan(0, 1, 0).ok());
  EXPECT_FALSE(MakeShardPlan(10, 0, 0).ok());
  EXPECT_FALSE(MakeShardPlan(10, 2, 2).ok());   // rank out of range.
  EXPECT_FALSE(MakeShardPlan(10, 2, -1).ok());
  // More ranks than slices: InvalidArgument, never a crash.
  Result<ShardPlan> plan = MakeShardPlan(3, 4, 0);
  EXPECT_EQ(plan.status().code(), StatusCode::kInvalidArgument);
}

TEST(ShardPlanTest, ShardsPartitionTheSliceRange) {
  for (Index L : {1, 5, 8, 9, 64}) {
    for (int R : {1, 2, 3, 4, 8}) {
      if (R > L) continue;
      Index covered = 0;
      Index prev_end = 0;
      for (int r = 0; r < R; ++r) {
        Result<ShardPlan> plan = MakeShardPlan(L, R, r);
        ASSERT_TRUE(plan.ok()) << plan.status().ToString();
        const ShardPlan& p = plan.value();
        EXPECT_EQ(p.slice_begin, prev_end);
        EXPECT_LE(p.slice_begin, p.slice_end);
        // Shard boundaries are chunk boundaries.
        EXPECT_EQ(p.slice_begin, p.ChunkSliceBegin(p.chunk_begin));
        EXPECT_EQ(p.slice_end,
                  p.chunk_end == 0 ? Index{0} : p.ChunkSliceEnd(p.chunk_end - 1));
        covered += p.NumLocalSlices();
        prev_end = p.slice_end;
      }
      EXPECT_EQ(covered, L) << "L=" << L << " R=" << R;
      EXPECT_EQ(prev_end, L);
    }
  }
}

TEST(ShardPlanTest, DegenerateShardsBeyondChunkGrid) {
  // L = 9 slices, 9 ranks, but only kShardChunkCount = 8 chunks: at least
  // one rank owns zero chunks yet the union still covers every slice.
  int degenerate = 0;
  Index covered = 0;
  for (int r = 0; r < 9; ++r) {
    Result<ShardPlan> plan = MakeShardPlan(9, 9, r);
    ASSERT_TRUE(plan.ok());
    if (plan.value().Degenerate()) ++degenerate;
    covered += plan.value().NumLocalSlices();
  }
  EXPECT_GE(degenerate, 1);
  EXPECT_EQ(covered, 9);
}

TEST(TreeCombineTest, GroupingIsAFixedBinaryTree) {
  auto shape = [](int n) {
    std::vector<std::string> parts;
    for (int i = 0; i < n; ++i) parts.push_back(std::to_string(i));
    TreeCombine(&parts, [](std::string* dst, const std::string& src) {
      *dst = "(" + *dst + "+" + src + ")";
    });
    return parts.empty() ? std::string() : parts[0];
  };
  EXPECT_EQ(shape(1), "0");
  EXPECT_EQ(shape(2), "(0+1)");
  EXPECT_EQ(shape(3), "((0+1)+2)");
  EXPECT_EQ(shape(4), "((0+1)+(2+3))");
  EXPECT_EQ(shape(5), "(((0+1)+(2+3))+4)");
  EXPECT_EQ(shape(8), "(((0+1)+(2+3))+((4+5)+(6+7)))");
}

TEST(TreeCombineTest, PowerOfTwoShardsComposeToTheGlobalTree) {
  // The cross-count bitwise contract in one picture: reducing 8 chunk
  // partials locally on R ranks (each owning a contiguous power-of-two
  // aligned range) and then combining rank results through the binomial
  // tree yields the same grouping for R = 1, 2, 4, 8.
  auto combine = [](std::string* dst, const std::string& src) {
    *dst = "(" + *dst + "+" + src + ")";
  };
  std::vector<std::string> reference;
  for (int R : {1, 2, 4, 8}) {
    std::vector<std::string> rank_partials;
    for (int r = 0; r < R; ++r) {
      std::vector<std::string> chunks;
      for (int c = 8 * r / R; c < 8 * (r + 1) / R; ++c) {
        chunks.push_back(std::to_string(c));
      }
      TreeCombine(&chunks, combine);
      rank_partials.push_back(chunks[0]);
    }
    // The binomial cross-rank reduce visits senders in the same pairwise
    // order as TreeCombine for power-of-two counts.
    TreeCombine(&rank_partials, combine);
    if (R == 1) {
      reference.push_back(rank_partials[0]);
    } else {
      EXPECT_EQ(rank_partials[0], reference[0]) << "R=" << R;
    }
  }
}

}  // namespace
}  // namespace dtucker
