#include <gtest/gtest.h>

#include <cmath>

#include "common/flags.h"
#include "common/memory.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/table_printer.h"
#include "common/timer.h"

namespace dtucker {
namespace {

// --- Status / Result ---

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad rank");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad rank");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= 7; ++c) {
    EXPECT_STRNE(StatusCodeToString(static_cast<StatusCode>(c)), "Unknown");
  }
}

Result<int> ParsePositive(int v) {
  if (v <= 0) return Status::OutOfRange("not positive");
  return v;
}

Result<int> DoubleIt(int v) {
  DT_ASSIGN_OR_RETURN(int parsed, ParsePositive(v));
  return parsed * 2;
}

TEST(ResultTest, ValuePath) {
  Result<int> r = DoubleIt(21);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
}

TEST(ResultTest, ErrorPropagatesThroughMacro) {
  Result<int> r = DoubleIt(-1);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
}

// --- Rng ---

TEST(RngTest, DeterministicStreams) {
  Rng a(5), b(5), c(6);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
  bool differs = false;
  Rng a2(5);
  for (int i = 0; i < 100; ++i) {
    if (a2.NextU64() != c.NextU64()) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(RngTest, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    double v = rng.Uniform(-2, 3);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
    uint64_t k = rng.UniformInt(10);
    EXPECT_LT(k, 10u);
  }
}

TEST(RngTest, GaussianMomentsApproximatelyStandard) {
  Rng rng(8);
  const int n = 20000;
  double sum = 0, sum2 = 0;
  for (int i = 0; i < n; ++i) {
    double g = rng.Gaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(RngTest, PermutationIsValid) {
  Rng rng(9);
  auto p = rng.Permutation(50);
  std::vector<bool> seen(50, false);
  for (auto v : p) {
    ASSERT_LT(v, 50u);
    EXPECT_FALSE(seen[v]);
    seen[v] = true;
  }
}

TEST(RngTest, SplitGivesIndependentStream) {
  Rng a(10);
  Rng child = a.Split();
  EXPECT_NE(a.NextU64(), child.NextU64());
}

// --- Timer ---

TEST(TimerTest, MeasuresElapsed) {
  Timer t;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + std::sqrt(i);
  EXPECT_GT(t.Seconds(), 0.0);
  const double first = t.Millis();
  EXPECT_LE(first, t.Millis());  // Monotonic.
}

TEST(PhaseTimerTest, AccumulatesBuckets) {
  PhaseTimer pt;
  pt.Add("a", 1.0);
  pt.Add("a", 0.5);
  pt.Add("b", 2.0);
  EXPECT_DOUBLE_EQ(pt.Total("a"), 1.5);
  EXPECT_DOUBLE_EQ(pt.Total("b"), 2.0);
  EXPECT_DOUBLE_EQ(pt.Total("missing"), 0.0);
  EXPECT_DOUBLE_EQ(pt.GrandTotal(), 3.5);
  pt.Reset();
  EXPECT_DOUBLE_EQ(pt.GrandTotal(), 0.0);
}

TEST(PhaseTimerTest, ScopedPhaseRecords) {
  PhaseTimer pt;
  {
    ScopedPhase phase(&pt, "scope");
    volatile double sink = 0;
    for (int i = 0; i < 10000; ++i) sink = sink + i;
  }
  EXPECT_GT(pt.Total("scope"), 0.0);
}

// --- MemoryMeter ---

TEST(MemoryMeterTest, TracksPeak) {
  MemoryMeter m;
  m.Charge(100);
  m.Charge(50);
  EXPECT_EQ(m.current_bytes(), 150u);
  EXPECT_EQ(m.peak_bytes(), 150u);
  m.Release(120);
  EXPECT_EQ(m.current_bytes(), 30u);
  EXPECT_EQ(m.peak_bytes(), 150u);
  m.Release(1000);  // Clamped.
  EXPECT_EQ(m.current_bytes(), 0u);
}

TEST(MemoryMeterTest, RssIsPositiveOnLinux) {
  EXPECT_GT(CurrentRssBytes(), 0u);
}

// --- FlagParser ---

TEST(FlagParserTest, ParsesAllTypes) {
  FlagParser p;
  p.AddString("name", "x", "a string")
      .AddInt("count", 3, "an int")
      .AddDouble("rate", 0.5, "a double")
      .AddBool("verbose", false, "a bool");
  const char* argv[] = {"prog", "--name=hello", "--count", "7",
                        "--rate=0.25", "--verbose"};
  ASSERT_TRUE(p.Parse(6, const_cast<char**>(argv)).ok());
  EXPECT_EQ(p.GetString("name"), "hello");
  EXPECT_EQ(p.GetInt("count"), 7);
  EXPECT_DOUBLE_EQ(p.GetDouble("rate"), 0.25);
  EXPECT_TRUE(p.GetBool("verbose"));
}

TEST(FlagParserTest, DefaultsHold) {
  FlagParser p;
  p.AddInt("count", 3, "an int");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(p.Parse(1, const_cast<char**>(argv)).ok());
  EXPECT_EQ(p.GetInt("count"), 3);
}

TEST(FlagParserTest, RejectsUnknownAndMalformed) {
  FlagParser p;
  p.AddInt("count", 3, "an int");
  const char* bad1[] = {"prog", "--nope=1"};
  EXPECT_FALSE(p.Parse(2, const_cast<char**>(bad1)).ok());
  const char* bad2[] = {"prog", "--count=abc"};
  EXPECT_FALSE(p.Parse(2, const_cast<char**>(bad2)).ok());
  const char* bad3[] = {"prog", "stray"};
  EXPECT_FALSE(p.Parse(2, const_cast<char**>(bad3)).ok());
}

TEST(FlagParserTest, HelpRequested) {
  FlagParser p;
  p.AddInt("count", 3, "an int");
  const char* argv[] = {"prog", "--help"};
  ASSERT_TRUE(p.Parse(2, const_cast<char**>(argv)).ok());
  EXPECT_TRUE(p.help_requested());
  EXPECT_NE(p.HelpString().find("count"), std::string::npos);
}

// --- TablePrinter ---

TEST(TablePrinterTest, RendersAlignedTable) {
  TablePrinter t({"method", "time"});
  t.AddRow({"D-Tucker", "1.5 s"});
  t.AddRow({"ALS", "30 s"});
  std::string s = t.ToString();
  EXPECT_NE(s.find("| method"), std::string::npos);
  EXPECT_NE(s.find("D-Tucker"), std::string::npos);
  EXPECT_NE(s.find("|--"), std::string::npos);
}

TEST(TablePrinterTest, Formatters) {
  EXPECT_EQ(TablePrinter::FormatDouble(1.23456, 2), "1.23");
  EXPECT_EQ(TablePrinter::FormatSeconds(0.5), "500.00 ms");
  EXPECT_EQ(TablePrinter::FormatSeconds(2.0), "2.000 s");
  EXPECT_NE(TablePrinter::FormatSeconds(1e-5).find("us"), std::string::npos);
  EXPECT_EQ(TablePrinter::FormatBytes(512), "512 B");
  EXPECT_EQ(TablePrinter::FormatBytes(2048), "2.0 KiB");
  EXPECT_NE(TablePrinter::FormatBytes(3u << 20).find("MiB"),
            std::string::npos);
  EXPECT_NE(TablePrinter::FormatScientific(0.001234).find("e-"),
            std::string::npos);
}

TEST(TablePrinterTest, ShortRowsPadded) {
  TablePrinter t({"a", "b", "c"});
  t.AddRow({"only"});
  EXPECT_NE(t.ToString().find("only"), std::string::npos);
}

}  // namespace
}  // namespace dtucker
