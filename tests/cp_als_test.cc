#include "cp/cp_als.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "linalg/blas.h"
#include "tensor/tensor_ops.h"

namespace dtucker {
namespace {

// Exact rank-R CP tensor with known components.
Tensor MakeCpTensor(const std::vector<Index>& shape, Index rank,
                    uint64_t seed) {
  Rng rng(seed);
  CpDecomposition truth;
  truth.factors.reserve(shape.size());
  for (Index dim : shape) {
    Matrix f = Matrix::GaussianRandom(dim, rank, rng);
    truth.factors.push_back(std::move(f));
  }
  truth.weights.assign(static_cast<std::size_t>(rank), 1.0);
  return truth.Reconstruct();
}

TEST(CpAlsTest, ValidatesInput) {
  Tensor x({4});
  CpAlsOptions opt;
  EXPECT_FALSE(CpAls(x, opt).ok());  // Order 1.
  Tensor y({4, 4, 4});
  opt.rank = 0;
  EXPECT_FALSE(CpAls(y, opt).ok());
}

TEST(CpAlsTest, ReconstructionIdentity) {
  // CpDecomposition::Reconstruct matches the elementwise definition.
  Rng rng(1);
  CpDecomposition dec;
  dec.factors = {Matrix::GaussianRandom(3, 2, rng),
                 Matrix::GaussianRandom(4, 2, rng),
                 Matrix::GaussianRandom(5, 2, rng)};
  dec.weights = {2.0, 0.5};
  Tensor rec = dec.Reconstruct();
  for (Index k = 0; k < 5; ++k) {
    for (Index j = 0; j < 4; ++j) {
      for (Index i = 0; i < 3; ++i) {
        double expect = 0;
        for (Index r = 0; r < 2; ++r) {
          expect += dec.weights[static_cast<std::size_t>(r)] *
                    dec.factors[0](i, r) * dec.factors[1](j, r) *
                    dec.factors[2](k, r);
        }
        EXPECT_NEAR(rec(i, j, k), expect, 1e-12);
      }
    }
  }
}

TEST(CpAlsTest, RecoversExactLowRankTensor) {
  Tensor x = MakeCpTensor({15, 12, 10}, 3, 2);
  CpAlsOptions opt;
  opt.rank = 3;
  opt.max_iterations = 200;
  opt.tolerance = 1e-12;
  Result<CpDecomposition> dec = CpAls(x, opt);
  ASSERT_TRUE(dec.ok());
  EXPECT_LT(dec.value().RelativeErrorAgainst(x), 1e-6);
}

TEST(CpAlsTest, WeightsSortedAndColumnsNormalized) {
  Tensor x = MakeCpTensor({12, 10, 8}, 4, 3);
  CpAlsOptions opt;
  opt.rank = 4;
  opt.max_iterations = 50;
  Result<CpDecomposition> dec = CpAls(x, opt);
  ASSERT_TRUE(dec.ok());
  const auto& w = dec.value().weights;
  for (std::size_t i = 1; i < w.size(); ++i) EXPECT_LE(w[i], w[i - 1]);
  for (const auto& f : dec.value().factors) {
    for (Index j = 0; j < f.cols(); ++j) {
      EXPECT_NEAR(Nrm2(f.col_data(j), f.rows()), 1.0, 1e-8);
    }
  }
}

TEST(CpAlsTest, InternalFitMatchesTrueError) {
  Tensor x = MakeCpTensor({10, 9, 8}, 5, 4);
  CpAlsOptions opt;
  opt.rank = 3;  // Under-parameterized: nonzero error.
  opt.max_iterations = 40;
  opt.tolerance = 0.0;
  TuckerStats stats;
  Result<CpDecomposition> dec = CpAls(x, opt, &stats);
  ASSERT_TRUE(dec.ok());
  ASSERT_FALSE(stats.error_history.empty());
  EXPECT_NEAR(stats.error_history.back(),
              dec.value().RelativeErrorAgainst(x), 1e-6);
}

TEST(CpAlsTest, ErrorDecreasesMonotonically) {
  Tensor x = MakeCpTensor({12, 11, 10}, 6, 5);
  CpAlsOptions opt;
  opt.rank = 4;
  opt.max_iterations = 30;
  opt.tolerance = 0.0;
  TuckerStats stats;
  ASSERT_TRUE(CpAls(x, opt, &stats).ok());
  for (std::size_t i = 1; i < stats.error_history.size(); ++i) {
    EXPECT_LE(stats.error_history[i], stats.error_history[i - 1] + 1e-9);
  }
}

TEST(CpAlsTest, FourOrderTensor) {
  Tensor x = MakeCpTensor({8, 7, 6, 5}, 2, 6);
  CpAlsOptions opt;
  opt.rank = 2;
  opt.max_iterations = 100;
  opt.tolerance = 1e-12;
  Result<CpDecomposition> dec = CpAls(x, opt);
  ASSERT_TRUE(dec.ok());
  EXPECT_LT(dec.value().RelativeErrorAgainst(x), 1e-5);
}

TEST(CpAlsTest, ByteSizeAccounts) {
  Tensor x = MakeCpTensor({10, 10, 10}, 2, 7);
  CpAlsOptions opt;
  opt.rank = 2;
  opt.max_iterations = 5;
  Result<CpDecomposition> dec = CpAls(x, opt);
  ASSERT_TRUE(dec.ok());
  EXPECT_EQ(dec.value().ByteSize(),
            (3 * 10 * 2 + 2) * sizeof(double));
}

}  // namespace
}  // namespace dtucker
