#include "data/csv_loader.h"

#include <gtest/gtest.h>

#include <cstdio>

namespace dtucker {
namespace {

TEST(CsvTest, ParsesSimpleNumeric) {
  Result<Matrix> m = ParseCsv("1,2,3\n4,5,6\n");
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m.value().rows(), 2);
  EXPECT_EQ(m.value().cols(), 3);
  EXPECT_EQ(m.value()(0, 0), 1);
  EXPECT_EQ(m.value()(1, 2), 6);
}

TEST(CsvTest, SkipsHeaderRows) {
  CsvOptions opt;
  opt.skip_rows = 1;
  Result<Matrix> m = ParseCsv("date,open,close\n1,2,3\n", opt);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m.value().rows(), 1);
  EXPECT_EQ(m.value()(0, 1), 2);
}

TEST(CsvTest, CustomDelimiterAndCrLf) {
  CsvOptions opt;
  opt.delimiter = ';';
  Result<Matrix> m = ParseCsv("1;2\r\n3;4\r\n", opt);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m.value()(1, 1), 4);
}

TEST(CsvTest, ScientificAndNegativeNumbers) {
  Result<Matrix> m = ParseCsv("-1.5,2e3\n0.25,-3.5e-2\n");
  ASSERT_TRUE(m.ok());
  EXPECT_DOUBLE_EQ(m.value()(0, 0), -1.5);
  EXPECT_DOUBLE_EQ(m.value()(0, 1), 2000);
  EXPECT_DOUBLE_EQ(m.value()(1, 1), -0.035);
}

TEST(CsvTest, RejectsRaggedRows) {
  EXPECT_FALSE(ParseCsv("1,2,3\n4,5\n").ok());
}

TEST(CsvTest, RejectsNonNumericByDefault) {
  EXPECT_FALSE(ParseCsv("1,x\n").ok());
  CsvOptions opt;
  opt.coerce_invalid_to_zero = true;
  Result<Matrix> m = ParseCsv("1,x\n", opt);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m.value()(0, 1), 0.0);
}

TEST(CsvTest, RejectsEmpty) {
  EXPECT_FALSE(ParseCsv("").ok());
  CsvOptions opt;
  opt.skip_rows = 2;
  EXPECT_FALSE(ParseCsv("h1\nh2\n", opt).ok());
}

TEST(CsvTest, SkipsBlankLines) {
  Result<Matrix> m = ParseCsv("1,2\n\n3,4\n");
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m.value().rows(), 2);
}

TEST(CsvTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/data.csv";
  FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("t,price\n0,10.5\n1,11.25\n2,9.75\n", f);
  std::fclose(f);
  CsvOptions opt;
  opt.skip_rows = 1;
  Result<Matrix> m = LoadCsvFile(path, opt);
  ASSERT_TRUE(m.ok()) << m.status().ToString();
  EXPECT_EQ(m.value().rows(), 3);
  EXPECT_DOUBLE_EQ(m.value()(1, 1), 11.25);
  std::remove(path.c_str());
  EXPECT_FALSE(LoadCsvFile(path).ok());  // Gone now.
}

TEST(CsvTest, StackMatricesIntoTensor) {
  Matrix a({{1, 2}, {3, 4}});
  Matrix b({{5, 6}, {7, 8}});
  Result<Tensor> t = StackMatrices({a, b});
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t.value().shape(), (std::vector<Index>{2, 2, 2}));
  EXPECT_EQ(t.value()(0, 0, 1), 2);  // Entity 0, row 0, col 1.
  EXPECT_EQ(t.value()(1, 1, 0), 7);  // Entity 1, row 1, col 0.
}

TEST(CsvTest, StackValidates) {
  EXPECT_FALSE(StackMatrices({}).ok());
  EXPECT_FALSE(StackMatrices({Matrix(2, 2), Matrix(2, 3)}).ok());
}

}  // namespace
}  // namespace dtucker
