#include <gtest/gtest.h>

#include <cstdio>

#include "data/datasets.h"
#include "data/generators.h"
#include "data/tensor_io.h"
#include "tucker/hosvd.h"

namespace dtucker {
namespace {

TEST(GeneratorsTest, LowRankTensorHasRequestedRank) {
  Tensor x = MakeLowRankTensor({12, 10, 8}, {3, 3, 3}, 0.0, 1);
  // Rank-(3,3,3) Tucker approximation must be exact.
  TuckerDecomposition dec = StHosvd(x, {3, 3, 3}).ValueOrDie();
  EXPECT_LT(dec.RelativeErrorAgainst(x), 1e-16);
  // Rank-(2,2,2) must not be (generic core).
  TuckerDecomposition dec2 = StHosvd(x, {2, 2, 2}).ValueOrDie();
  EXPECT_GT(dec2.RelativeErrorAgainst(x), 1e-6);
}

TEST(GeneratorsTest, NoiseRaisesResidual) {
  Tensor clean = MakeLowRankTensor({10, 10, 10}, {2, 2, 2}, 0.0, 2);
  Tensor noisy = MakeLowRankTensor({10, 10, 10}, {2, 2, 2}, 0.5, 2);
  TuckerDecomposition dc = StHosvd(clean, {2, 2, 2}).ValueOrDie();
  TuckerDecomposition dn = StHosvd(noisy, {2, 2, 2}).ValueOrDie();
  EXPECT_GT(dn.RelativeErrorAgainst(noisy), dc.RelativeErrorAgainst(clean));
}

TEST(GeneratorsTest, DeterministicInSeed) {
  Tensor a = MakeVideoAnalog(12, 10, 6, 2, 0.05, 7);
  Tensor b = MakeVideoAnalog(12, 10, 6, 2, 0.05, 7);
  Tensor c = MakeVideoAnalog(12, 10, 6, 2, 0.05, 8);
  EXPECT_TRUE(AlmostEqual(a, b, 0.0));
  EXPECT_FALSE(AlmostEqual(a, c, 1e-12));
}

TEST(GeneratorsTest, ShapesAsRequested) {
  EXPECT_EQ(MakeVideoAnalog(8, 9, 10, 2, 0, 1).shape(),
            (std::vector<Index>{8, 9, 10}));
  EXPECT_EQ(MakeStockAnalog(7, 5, 11, 3, 0, 1).shape(),
            (std::vector<Index>{7, 5, 11}));
  EXPECT_EQ(MakeTrafficAnalog(6, 4, 12, 0, 1).shape(),
            (std::vector<Index>{6, 4, 12}));
  EXPECT_EQ(MakeMusicAnalog(5, 16, 6, 0, 1).shape(),
            (std::vector<Index>{5, 16, 6}));
  EXPECT_EQ(MakeClimateAnalog(4, 5, 3, 6, 0, 1).shape(),
            (std::vector<Index>{4, 5, 3, 6}));
}

TEST(GeneratorsTest, AnalogsAreApproximatelyLowRank) {
  // The defining property the methods rely on: a modest Tucker rank
  // captures most of the energy.
  struct Case {
    Tensor x;
    const char* name;
  };
  std::vector<Case> cases;
  cases.push_back({MakeStockAnalog(40, 12, 50, 6, 0.1, 3), "stock"});
  cases.push_back({MakeTrafficAnalog(30, 12, 96, 0.05, 4), "traffic"});
  cases.push_back({MakeMusicAnalog(20, 32, 24, 0.02, 5), "music"});
  for (auto& c : cases) {
    TuckerDecomposition dec =
        StHosvd(c.x, {8, 8, std::min<Index>(8, c.x.dim(2))}).ValueOrDie();
    EXPECT_LT(dec.RelativeErrorAgainst(c.x), 0.25) << c.name;
  }
}

TEST(DatasetsTest, RegistryListsSix) {
  EXPECT_EQ(BenchmarkDatasets().size(), 6u);
  EXPECT_NE(DatasetNames().find("video"), std::string::npos);
  EXPECT_NE(DatasetNames().find("climate"), std::string::npos);
}

TEST(DatasetsTest, UnknownNameRejected) {
  EXPECT_FALSE(MakeDataset("nope").ok());
  EXPECT_FALSE(MakeDataset("video", 0.0).ok());
  EXPECT_FALSE(MakeDataset("video", 2.0).ok());
}

TEST(DatasetsTest, ScaleShrinksShape) {
  Result<Tensor> small = MakeDataset("stock", 0.05);
  ASSERT_TRUE(small.ok());
  EXPECT_LE(small.value().dim(0), 32);
  EXPECT_GE(small.value().dim(0), 8);  // Floor applies.
  EXPECT_EQ(small.value().order(), 3);
}

TEST(DatasetsTest, ClimateIsFourOrder) {
  Result<Tensor> t = MakeDataset("climate", 0.1);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t.value().order(), 4);
}

TEST(TensorIoTest, SaveLoadRoundTrip) {
  Tensor x = MakeLowRankTensor({6, 5, 4}, {2, 2, 2}, 0.1, 6);
  const std::string path = ::testing::TempDir() + "/roundtrip.dtnsr";
  ASSERT_TRUE(SaveTensor(x, path).ok());
  Result<Tensor> loaded = LoadTensor(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(AlmostEqual(loaded.value(), x, 0.0));
  std::remove(path.c_str());
}

TEST(TensorIoTest, MissingFileReported) {
  Result<Tensor> r = LoadTensor("/nonexistent/path/file.dtnsr");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

TEST(TensorIoTest, CorruptMagicRejected) {
  const std::string path = ::testing::TempDir() + "/bad.dtnsr";
  FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fwrite("NOTMAGIC", 1, 8, f);
  std::fclose(f);
  Result<Tensor> r = LoadTensor(path);
  EXPECT_FALSE(r.ok());
  std::remove(path.c_str());
}

TEST(TensorIoTest, TruncatedPayloadRejected) {
  Tensor x = MakeLowRankTensor({6, 5, 4}, {2, 2, 2}, 0.0, 7);
  const std::string path = ::testing::TempDir() + "/trunc.dtnsr";
  ASSERT_TRUE(SaveTensor(x, path).ok());
  // Truncate the file to half.
  FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(truncate(path.c_str(), 100), 0);
  std::fclose(f);
  EXPECT_FALSE(LoadTensor(path).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dtucker
