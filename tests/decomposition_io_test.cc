#include "data/decomposition_io.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "data/generators.h"
#include "dtucker/dtucker.h"
#include "tucker/hosvd.h"

namespace dtucker {
namespace {

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(DecompositionIoTest, RoundTrip) {
  Tensor x = MakeLowRankTensor({10, 9, 8}, {3, 3, 3}, 0.1, 1);
  TuckerDecomposition dec = StHosvd(x, {3, 2, 3}).ValueOrDie();
  const std::string path = TempPath("dec.dtdc");
  ASSERT_TRUE(SaveDecomposition(dec, path).ok());

  Result<TuckerDecomposition> loaded = LoadDecomposition(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(AlmostEqual(loaded.value().core, dec.core, 0.0));
  ASSERT_EQ(loaded.value().factors.size(), 3u);
  for (std::size_t n = 0; n < 3; ++n) {
    EXPECT_TRUE(AlmostEqual(loaded.value().factors[n], dec.factors[n], 0.0));
  }
  // Reconstructions agree exactly.
  EXPECT_TRUE(
      AlmostEqual(loaded.value().Reconstruct(), dec.Reconstruct(), 1e-12));
  std::remove(path.c_str());
}

TEST(DecompositionIoTest, MissingFile) {
  EXPECT_FALSE(LoadDecomposition("/no/such/file.dtdc").ok());
}

TEST(DecompositionIoTest, WrongMagicRejected) {
  const std::string path = TempPath("bad.dtdc");
  FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fwrite("DTNSR001", 1, 8, f);  // Tensor magic, not decomposition.
  std::fclose(f);
  EXPECT_FALSE(LoadDecomposition(path).ok());
  std::remove(path.c_str());
}

TEST(DecompositionIoTest, TruncatedFileRejected) {
  Tensor x = MakeLowRankTensor({8, 8, 8}, {2, 2, 2}, 0.0, 2);
  TuckerDecomposition dec = StHosvd(x, {2, 2, 2}).ValueOrDie();
  const std::string path = TempPath("trunc.dtdc");
  ASSERT_TRUE(SaveDecomposition(dec, path).ok());
  ASSERT_EQ(truncate(path.c_str(), 64), 0);
  EXPECT_FALSE(LoadDecomposition(path).ok());
  std::remove(path.c_str());
}

TEST(SliceApproximationIoTest, RoundTrip) {
  Tensor x = MakeLowRankTensor({12, 10, 3, 2}, {3, 3, 2, 2}, 0.1, 3);
  SliceApproximationOptions opt;
  opt.slice_rank = 3;
  Result<SliceApproximation> approx = ApproximateSlices(x, opt);
  ASSERT_TRUE(approx.ok());

  const std::string path = TempPath("approx.dtsa");
  ASSERT_TRUE(SaveSliceApproximation(approx.value(), path).ok());
  Result<SliceApproximation> loaded = LoadSliceApproximation(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  EXPECT_EQ(loaded.value().shape, approx.value().shape);
  EXPECT_EQ(loaded.value().slice_rank, approx.value().slice_rank);
  ASSERT_EQ(loaded.value().NumSlices(), approx.value().NumSlices());
  for (Index l = 0; l < loaded.value().NumSlices(); ++l) {
    const auto& a = approx.value().slices[static_cast<std::size_t>(l)];
    const auto& b = loaded.value().slices[static_cast<std::size_t>(l)];
    EXPECT_TRUE(AlmostEqual(a.u, b.u, 0.0));
    EXPECT_TRUE(AlmostEqual(a.v, b.v, 0.0));
    EXPECT_EQ(a.s, b.s);
  }
  std::remove(path.c_str());
}

TEST(SliceApproximationIoTest, QueryAfterReloadMatches) {
  // Compress, persist, reload in "another process", decompose: identical
  // result to decomposing the in-memory approximation.
  Tensor x = MakeLowRankTensor({16, 14, 10}, {4, 4, 4}, 0.2, 4);
  SliceApproximationOptions sopt;
  sopt.slice_rank = 4;
  Result<SliceApproximation> approx = ApproximateSlices(x, sopt);
  ASSERT_TRUE(approx.ok());
  const std::string path = TempPath("query.dtsa");
  ASSERT_TRUE(SaveSliceApproximation(approx.value(), path).ok());
  Result<SliceApproximation> reloaded = LoadSliceApproximation(path);
  ASSERT_TRUE(reloaded.ok());

  DTuckerOptions opt;
  opt.tucker.ranks = {4, 4, 4};
  opt.tucker.max_iterations = 5;
  Result<TuckerDecomposition> d1 =
      DTuckerFromApproximation(approx.value(), opt);
  Result<TuckerDecomposition> d2 =
      DTuckerFromApproximation(reloaded.value(), opt);
  ASSERT_TRUE(d1.ok() && d2.ok());
  EXPECT_TRUE(AlmostEqual(d1.value().core, d2.value().core, 0.0));
  std::remove(path.c_str());
}

TEST(SliceApproximationIoTest, WrongMagicRejected) {
  const std::string path = TempPath("bad.dtsa");
  FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fwrite("DTDC0001", 1, 8, f);
  std::fclose(f);
  EXPECT_FALSE(LoadSliceApproximation(path).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dtucker
