// Stress tests for the matricization-free, slice-parallel iteration phase:
// ModeGram vs. Gram-of-Unfold equivalence over a shape sweep, Unfold/Fold
// roundtrips covering the mode-0 fast path, and bitwise thread-determinism
// of ModeGram, the slice-parallel carrier/projected-core builders, one
// DTuckerSweep, and the full DTucker pipeline (factors and core identical
// across 1/2/8 BLAS threads). Runs under both `ctest -L tsan`
// (-DDTUCKER_SANITIZE=thread) and `ctest -L asan`
// (-DDTUCKER_SANITIZE=address).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "dtucker/dtucker.h"
#include "dtucker/slice_approximation.h"
#include "linalg/blas.h"
#include "tensor/tensor.h"
#include "tensor/tensor_ops.h"

namespace dtucker {
namespace {

bool BitwiseEqualMatrix(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  for (Index j = 0; j < a.cols(); ++j) {
    for (Index i = 0; i < a.rows(); ++i) {
      if (a(i, j) != b(i, j)) return false;
    }
  }
  return true;
}

bool BitwiseEqualTensor(const Tensor& a, const Tensor& b) {
  if (a.shape() != b.shape()) return false;
  for (Index i = 0; i < a.size(); ++i) {
    if (a.data()[i] != b.data()[i]) return false;
  }
  return true;
}

class DTuckerStressTest : public ::testing::Test {
 protected:
  void TearDown() override { SetBlasThreads(1); }
};

// Shapes covering every mode position (first / middle / last), odd sizes,
// singleton modes, orders 3-5, and back-slab counts on both sides of the
// fixed chunk count.
const std::vector<std::vector<Index>> kGramShapes = {
    {4, 5, 6},       {7, 3, 2},    {5, 5, 5},     {1, 6, 4},  {6, 1, 4},
    {6, 4, 1},       {3, 4, 2, 5}, {2, 3, 4, 5},  {9, 2, 11}, {4, 3, 2, 2, 3},
    {16, 12, 20},    {8, 8, 3},    {13, 7, 2, 4},
};

TEST_F(DTuckerStressTest, ModeGramMatchesGramOfUnfold) {
  Rng rng(7);
  for (const auto& shape : kGramShapes) {
    Tensor x = Tensor::GaussianRandom(shape, rng);
    for (Index mode = 0; mode < x.order(); ++mode) {
      Matrix g = ModeGram(x, mode);
      Matrix unf = Unfold(x, mode);
      Matrix ref(unf.rows(), unf.rows());
      Gemm(Trans::kNo, Trans::kYes, 1.0, unf, unf, 0.0, &ref);
      ASSERT_EQ(g.rows(), x.dim(mode));
      ASSERT_EQ(g.cols(), x.dim(mode));
      double scale = std::max(1.0, ref.MaxAbs());
      for (Index j = 0; j < g.cols(); ++j) {
        for (Index i = 0; i < g.rows(); ++i) {
          EXPECT_NEAR(g(i, j), ref(i, j), 1e-12 * scale)
              << "shape " << x.ShapeString() << " mode " << mode << " at ("
              << i << ", " << j << ")";
        }
      }
    }
  }
}

TEST_F(DTuckerStressTest, ModeGramBitwiseDeterministicAcrossThreads) {
  Rng rng(11);
  for (const auto& shape : kGramShapes) {
    Tensor x = Tensor::GaussianRandom(shape, rng);
    for (Index mode = 0; mode < x.order(); ++mode) {
      SetBlasThreads(1);
      Matrix g1 = ModeGram(x, mode);
      for (int threads : {2, 8}) {
        SetBlasThreads(threads);
        Matrix gt = ModeGram(x, mode);
        EXPECT_TRUE(BitwiseEqualMatrix(g1, gt))
            << "shape " << x.ShapeString() << " mode " << mode << " threads "
            << threads;
      }
      SetBlasThreads(1);
    }
  }
}

TEST_F(DTuckerStressTest, UnfoldFoldRoundtripEveryMode) {
  Rng rng(13);
  for (const auto& shape : kGramShapes) {
    Tensor x = Tensor::GaussianRandom(shape, rng);
    for (Index mode = 0; mode < x.order(); ++mode) {
      // Mode 0 exercises the layout-preserving memcpy fast path.
      Matrix unf = Unfold(x, mode);
      Tensor back = Fold(unf, mode, x.shape());
      EXPECT_TRUE(BitwiseEqualTensor(x, back))
          << "shape " << x.ShapeString() << " mode " << mode;
    }
  }
}

SliceApproximation MakeApprox(const std::vector<Index>& shape, Index js,
                              uint64_t seed) {
  Rng rng(seed);
  Tensor x = Tensor::GaussianRandom(shape, rng);
  SliceApproximationOptions opt;
  opt.slice_rank = js;
  Result<SliceApproximation> approx = ApproximateSlices(x, opt);
  EXPECT_TRUE(approx.ok());
  return std::move(approx).value();
}

TEST_F(DTuckerStressTest, CarrierBuildersBitwiseDeterministicAcrossThreads) {
  const std::vector<Index> shape = {14, 12, 5, 2};
  SliceApproximation approx = MakeApprox(shape, 4, 17);
  Rng rng(19);
  Matrix a1 = Matrix::GaussianRandom(14, 3, rng);
  Matrix a2 = Matrix::GaussianRandom(12, 3, rng);

  SetBlasThreads(1);
  Tensor t1, t2, z;
  internal_dtucker::BuildModeOneCarrierInto(approx, a2, 1.0, &t1);
  internal_dtucker::BuildModeTwoCarrierInto(approx, a1, 1.0, &t2);
  internal_dtucker::BuildProjectedCoreInto(approx, a1, a2, 1.0, &z);
  for (int threads : {2, 8}) {
    SetBlasThreads(threads);
    Tensor u1, u2, w;
    internal_dtucker::BuildModeOneCarrierInto(approx, a2, 1.0, &u1);
    internal_dtucker::BuildModeTwoCarrierInto(approx, a1, 1.0, &u2);
    internal_dtucker::BuildProjectedCoreInto(approx, a1, a2, 1.0, &w);
    EXPECT_TRUE(BitwiseEqualTensor(t1, u1)) << "threads " << threads;
    EXPECT_TRUE(BitwiseEqualTensor(t2, u2)) << "threads " << threads;
    EXPECT_TRUE(BitwiseEqualTensor(z, w)) << "threads " << threads;
  }
}

TEST_F(DTuckerStressTest, SweepBitwiseDeterministicAcrossThreads) {
  const std::vector<Index> shape = {16, 15, 4, 3};
  const std::vector<Index> ranks = {5, 4, 3, 2};
  SliceApproximation approx = MakeApprox(shape, 6, 23);

  auto run = [&]() {
    DTuckerOptions opt;
    opt.tucker.ranks = ranks;
    Result<TuckerDecomposition> init = DTuckerInitializeOnly(approx, opt);
    EXPECT_TRUE(init.ok());
    TuckerDecomposition dec = std::move(init).value();
    internal_dtucker::SweepWorkspace ws;
    internal_dtucker::DTuckerSweep(approx, ranks, &dec.factors, &dec.core,
                                   &ws, 1.0);
    return dec;
  };

  SetBlasThreads(1);
  TuckerDecomposition ref = run();
  for (int threads : {2, 8}) {
    SetBlasThreads(threads);
    TuckerDecomposition got = run();
    for (std::size_t n = 0; n < ref.factors.size(); ++n) {
      EXPECT_TRUE(BitwiseEqualMatrix(ref.factors[n], got.factors[n]))
          << "factor " << n << " threads " << threads;
    }
    EXPECT_TRUE(BitwiseEqualTensor(ref.core, got.core))
        << "threads " << threads;
  }
}

TEST_F(DTuckerStressTest, FullDTuckerBitwiseDeterministicAcrossThreads) {
  Rng rng(29);
  Tensor x = Tensor::GaussianRandom({18, 16, 6, 2}, rng);

  auto run = [&](int threads) {
    SetBlasThreads(threads);
    DTuckerOptions opt;
    opt.tucker.ranks = {5, 4, 3, 2};
    opt.slice_rank = 6;
    opt.tucker.max_iterations = 4;
    opt.num_threads = threads;  // Approximation-phase pool.
    Result<TuckerDecomposition> dec = DTucker(x, opt);
    EXPECT_TRUE(dec.ok());
    return std::move(dec).value();
  };

  TuckerDecomposition ref = run(1);
  for (int threads : {2, 8}) {
    TuckerDecomposition got = run(threads);
    ASSERT_EQ(ref.factors.size(), got.factors.size());
    for (std::size_t n = 0; n < ref.factors.size(); ++n) {
      EXPECT_TRUE(BitwiseEqualMatrix(ref.factors[n], got.factors[n]))
          << "factor " << n << " threads " << threads;
    }
    EXPECT_TRUE(BitwiseEqualTensor(ref.core, got.core))
        << "threads " << threads;
  }
}

TEST_F(DTuckerStressTest, ModeProductIntoReusesAndMatchesModeProduct) {
  Rng rng(31);
  Tensor x = Tensor::GaussianRandom({9, 7, 5, 3}, rng);
  Tensor out;
  for (Index mode = 0; mode < x.order(); ++mode) {
    Matrix u = Matrix::GaussianRandom(x.dim(mode), 4, rng);
    Tensor ref = ModeProduct(x, u, mode, Trans::kYes);
    // Reuse the same workspace tensor across modes (shape changes).
    ModeProductInto(x, u, mode, Trans::kYes, &out);
    EXPECT_TRUE(BitwiseEqualTensor(ref, out)) << "mode " << mode;
  }
}

}  // namespace
}  // namespace dtucker
