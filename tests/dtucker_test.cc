#include "dtucker/dtucker.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/generators.h"
#include "linalg/blas.h"
#include "tucker/tucker_als.h"

namespace dtucker {
namespace {

DTuckerOptions MakeOptions(std::vector<Index> ranks, int iters = 10) {
  DTuckerOptions opt;
  opt.tucker.ranks = std::move(ranks);
  opt.tucker.max_iterations = iters;
  return opt;
}

TEST(DTuckerTest, RejectsLowOrder) {
  Tensor x({5, 5});
  EXPECT_FALSE(DTucker(x, MakeOptions({2, 2})).ok());
}

TEST(DTuckerTest, RejectsBadRanks) {
  Rng rng(1);
  Tensor x = Tensor::GaussianRandom({6, 6, 6}, rng);
  EXPECT_FALSE(DTucker(x, MakeOptions({2, 2})).ok());
  EXPECT_FALSE(DTucker(x, MakeOptions({7, 2, 2})).ok());
}

TEST(DTuckerTest, ExactRecoveryOfLowRankTensor) {
  Tensor x = MakeLowRankTensor({20, 18, 12}, {3, 3, 3}, 0.0, 2);
  Result<TuckerDecomposition> dec = DTucker(x, MakeOptions({3, 3, 3}));
  ASSERT_TRUE(dec.ok()) << dec.status().ToString();
  EXPECT_LT(dec.value().RelativeErrorAgainst(x), 1e-12);
}

TEST(DTuckerTest, FactorsOrthonormalCorrectShapes) {
  Tensor x = MakeLowRankTensor({16, 14, 10}, {5, 5, 5}, 0.1, 3);
  Result<TuckerDecomposition> dec = DTucker(x, MakeOptions({4, 3, 2}));
  ASSERT_TRUE(dec.ok());
  ASSERT_EQ(dec.value().factors.size(), 3u);
  EXPECT_EQ(dec.value().factors[0].rows(), 16);
  EXPECT_EQ(dec.value().factors[0].cols(), 4);
  EXPECT_EQ(dec.value().factors[1].cols(), 3);
  EXPECT_EQ(dec.value().factors[2].cols(), 2);
  EXPECT_EQ(dec.value().core.shape(), (std::vector<Index>{4, 3, 2}));
  for (const auto& f : dec.value().factors) {
    EXPECT_TRUE(AlmostEqual(MultiplyTN(f, f), Matrix::Identity(f.cols()),
                            1e-8));
  }
}

TEST(DTuckerTest, MatchesTuckerAlsAccuracyOnNoisyData) {
  // The headline accuracy claim: D-Tucker's error is comparable to HOOI's.
  Tensor x = MakeLowRankTensor({24, 20, 16}, {4, 4, 4}, 0.3, 4);
  std::vector<Index> ranks = {4, 4, 4};

  Result<TuckerDecomposition> dt = DTucker(x, MakeOptions(ranks, 20));
  ASSERT_TRUE(dt.ok());
  TuckerAlsOptions als_opt;
  als_opt.ranks = ranks;
  als_opt.max_iterations = 20;
  Result<TuckerDecomposition> als = TuckerAls(x, als_opt);
  ASSERT_TRUE(als.ok());

  const double err_dt = dt.value().RelativeErrorAgainst(x);
  const double err_als = als.value().RelativeErrorAgainst(x);
  EXPECT_LT(err_dt, err_als * 1.05 + 1e-6)
      << "D-Tucker err " << err_dt << " vs ALS err " << err_als;
}

TEST(DTuckerTest, FourOrderTensor) {
  Tensor x = MakeLowRankTensor({12, 10, 6, 5}, {2, 2, 2, 2}, 0.0, 5);
  Result<TuckerDecomposition> dec = DTucker(x, MakeOptions({2, 2, 2, 2}));
  ASSERT_TRUE(dec.ok());
  EXPECT_LT(dec.value().RelativeErrorAgainst(x), 1e-12);
}

TEST(DTuckerTest, StatsArePopulated) {
  Tensor x = MakeLowRankTensor({15, 15, 10}, {3, 3, 3}, 0.1, 6);
  TuckerStats stats;
  Result<TuckerDecomposition> dec =
      DTucker(x, MakeOptions({3, 3, 3}), &stats);
  ASSERT_TRUE(dec.ok());
  EXPECT_GT(stats.preprocess_seconds, 0.0);
  EXPECT_GE(stats.iterations, 1);
  EXPECT_FALSE(stats.error_history.empty());
  EXPECT_GT(stats.working_bytes, 0u);
  // Compressed representation smaller than the raw tensor.
  EXPECT_LT(stats.working_bytes, x.ByteSize());
}

TEST(DTuckerTest, ErrorProxyDecreasesMonotonically) {
  Tensor x = MakeLowRankTensor({18, 16, 14}, {6, 6, 6}, 0.4, 7);
  DTuckerOptions opt = MakeOptions({3, 3, 3}, 8);
  opt.tucker.tolerance = 0.0;
  TuckerStats stats;
  ASSERT_TRUE(DTucker(x, opt, &stats).ok());
  for (std::size_t i = 1; i < stats.error_history.size(); ++i) {
    EXPECT_LE(stats.error_history[i], stats.error_history[i - 1] + 1e-10);
  }
}

TEST(DTuckerTest, DeterministicInSeed) {
  Tensor x = MakeLowRankTensor({14, 12, 10}, {3, 3, 3}, 0.2, 8);
  Result<TuckerDecomposition> a = DTucker(x, MakeOptions({3, 3, 3}));
  Result<TuckerDecomposition> b = DTucker(x, MakeOptions({3, 3, 3}));
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_TRUE(AlmostEqual(a.value().core, b.value().core, 0.0));
  for (std::size_t n = 0; n < 3; ++n) {
    EXPECT_TRUE(AlmostEqual(a.value().factors[n], b.value().factors[n], 0.0));
  }
}

TEST(DTuckerTest, InitializeOnlyIsReasonable) {
  Tensor x = MakeLowRankTensor({20, 18, 12}, {3, 3, 3}, 0.1, 9);
  SliceApproximationOptions sopt;
  sopt.slice_rank = 3;
  Result<SliceApproximation> approx = ApproximateSlices(x, sopt);
  ASSERT_TRUE(approx.ok());
  Result<TuckerDecomposition> init =
      DTuckerInitializeOnly(approx.value(), MakeOptions({3, 3, 3}));
  ASSERT_TRUE(init.ok());
  // Init alone should already capture most of the signal energy.
  EXPECT_LT(init.value().RelativeErrorAgainst(x), 0.1);

  // Full iterations should not be worse.
  Result<TuckerDecomposition> full =
      DTuckerFromApproximation(approx.value(), MakeOptions({3, 3, 3}));
  ASSERT_TRUE(full.ok());
  EXPECT_LE(full.value().RelativeErrorAgainst(x),
            init.value().RelativeErrorAgainst(x) + 1e-9);
}

TEST(DTuckerTest, ApproximationReuseAcrossRanks) {
  // Compress once, decompose at several target ranks — the "query" usage.
  Tensor x = MakeLowRankTensor({20, 16, 12}, {6, 6, 6}, 0.2, 10);
  SliceApproximationOptions sopt;
  sopt.slice_rank = 6;
  Result<SliceApproximation> approx = ApproximateSlices(x, sopt);
  ASSERT_TRUE(approx.ok());

  double prev_err = 2.0;
  for (Index r : {2, 4, 6}) {
    Result<TuckerDecomposition> dec =
        DTuckerFromApproximation(approx.value(), MakeOptions({r, r, r}));
    ASSERT_TRUE(dec.ok());
    const double err = dec.value().RelativeErrorAgainst(x);
    EXPECT_LE(err, prev_err + 1e-10) << "rank " << r;
    prev_err = err;
  }
}

TEST(DTuckerTest, AutoReorderHandlesSmallLeadingModes) {
  // Shape deliberately puts the two largest modes last.
  Tensor base = MakeLowRankTensor({25, 20, 6}, {3, 3, 3}, 0.05, 11);
  Tensor x = base.Permuted({2, 0, 1});  // Now (6, 25, 20).
  DTuckerOptions opt = MakeOptions({3, 3, 3});
  opt.auto_reorder = true;
  Result<TuckerDecomposition> dec = DTucker(x, opt);
  ASSERT_TRUE(dec.ok());
  EXPECT_EQ(dec.value().factors[0].rows(), 6);
  EXPECT_EQ(dec.value().factors[1].rows(), 25);
  EXPECT_EQ(dec.value().factors[2].rows(), 20);
  EXPECT_LT(dec.value().RelativeErrorAgainst(x), 0.02);
}

TEST(DTuckerTest, ApproximationValidateCatchesCorruption) {
  Tensor x = MakeLowRankTensor({12, 10, 6}, {3, 3, 3}, 0.1, 21);
  SliceApproximationOptions sopt;
  sopt.slice_rank = 3;
  SliceApproximation approx =
      ApproximateSlices(x, sopt).ValueOrDie();
  EXPECT_TRUE(approx.Validate().ok());

  SliceApproximation missing = approx;
  missing.slices.pop_back();
  EXPECT_FALSE(missing.Validate().ok());
  EXPECT_FALSE(
      DTuckerFromApproximation(missing, MakeOptions({3, 3, 3})).ok());

  SliceApproximation bad_shape = approx;
  bad_shape.slices[2].u = Matrix(11, 3);  // Wrong I1.
  EXPECT_FALSE(bad_shape.Validate().ok());

  SliceApproximation ragged = approx;
  ragged.slices[1].s.resize(2);  // Rank no longer matches u/v columns.
  EXPECT_FALSE(ragged.Validate().ok());
}

TEST(DTuckerTest, SuggestRanksFromApproximationMatchesRawSuggestion) {
  Tensor x = MakeLowRankTensor({24, 20, 16}, {4, 3, 5}, 0.0, 22);
  SliceApproximationOptions sopt;
  sopt.slice_rank = 8;  // Probe rank above the true rank.
  SliceApproximation approx = ApproximateSlices(x, sopt).ValueOrDie();

  Result<RankSuggestion> from_approx =
      SuggestRanksFromApproximation(approx, 1.0 - 1e-10);
  ASSERT_TRUE(from_approx.ok()) << from_approx.status().ToString();
  EXPECT_EQ(from_approx.value().ranks, (std::vector<Index>{4, 3, 5}));
}

TEST(DTuckerTest, SuggestRanksFromApproximationValidates) {
  Tensor x = MakeLowRankTensor({10, 9, 5}, {2, 2, 2}, 0.1, 23);
  SliceApproximationOptions sopt;
  sopt.slice_rank = 2;
  SliceApproximation approx = ApproximateSlices(x, sopt).ValueOrDie();
  EXPECT_FALSE(SuggestRanksFromApproximation(approx, 0.0).ok());
  EXPECT_FALSE(SuggestRanksFromApproximation(approx, 1.5).ok());
  Result<RankSuggestion> capped =
      SuggestRanksFromApproximation(approx, 1.0 - 1e-10, /*max_rank=*/1);
  ASSERT_TRUE(capped.ok());
  for (Index r : capped.value().ranks) EXPECT_EQ(r, 1);
}

TEST(DTuckerTest, ScaleInvariance) {
  Tensor x = MakeLowRankTensor({16, 14, 12}, {3, 3, 3}, 0.2, 20);
  Tensor x_small = x;
  x_small *= 1e-8;
  DTuckerOptions opt = MakeOptions({3, 3, 3});
  Result<TuckerDecomposition> a = DTucker(x, opt);
  Result<TuckerDecomposition> b = DTucker(x_small, opt);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NEAR(a.value().RelativeErrorAgainst(x),
              b.value().RelativeErrorAgainst(x_small), 1e-9);
}

TEST(DTuckerTest, SliceRankDefaultsToMaxLeadingRank) {
  DTuckerOptions opt;
  opt.tucker.ranks = {4, 7, 2};
  EXPECT_EQ(opt.EffectiveSliceRank(), 7);
  opt.slice_rank = 3;
  EXPECT_EQ(opt.EffectiveSliceRank(), 3);
}

TEST(DTuckerTest, HigherSliceRankDoesNotHurt) {
  Tensor x = MakeLowRankTensor({18, 16, 10}, {5, 5, 5}, 0.3, 12);
  DTuckerOptions coarse = MakeOptions({3, 3, 3}, 10);
  coarse.slice_rank = 3;
  DTuckerOptions fine = MakeOptions({3, 3, 3}, 10);
  fine.slice_rank = 8;
  Result<TuckerDecomposition> dc = DTucker(x, coarse);
  Result<TuckerDecomposition> df = DTucker(x, fine);
  ASSERT_TRUE(dc.ok() && df.ok());
  EXPECT_LE(df.value().RelativeErrorAgainst(x),
            dc.value().RelativeErrorAgainst(x) + 1e-6);
}

}  // namespace
}  // namespace dtucker
