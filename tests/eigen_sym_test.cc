#include "linalg/eigen_sym.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "linalg/blas.h"
#include "linalg/svd.h"

namespace dtucker {
namespace {

Matrix RandomSymmetric(Index n, uint64_t seed) {
  Rng rng(seed);
  Matrix a = Matrix::GaussianRandom(n, n, rng);
  Matrix s(n, n);
  for (Index i = 0; i < n; ++i) {
    for (Index j = 0; j < n; ++j) s(i, j) = 0.5 * (a(i, j) + a(j, i));
  }
  return s;
}

TEST(EigenSymTest, DiagonalMatrix) {
  Matrix a = Matrix::Diagonal({1, 5, 3});
  EigenSymResult eig = EigenSym(a);
  EXPECT_NEAR(eig.values[0], 5, 1e-12);
  EXPECT_NEAR(eig.values[1], 3, 1e-12);
  EXPECT_NEAR(eig.values[2], 1, 1e-12);
}

class EigenSymParamTest : public ::testing::TestWithParam<Index> {};

TEST_P(EigenSymParamTest, Reconstructs) {
  const Index n = GetParam();
  Matrix a = RandomSymmetric(n, 31 + static_cast<uint64_t>(n));
  EigenSymResult eig = EigenSym(a);

  // V orthonormal.
  EXPECT_TRUE(AlmostEqual(MultiplyTN(eig.vectors, eig.vectors),
                          Matrix::Identity(n), 1e-9));
  // V diag(w) V^T = A.
  Matrix vd = eig.vectors;
  for (Index j = 0; j < n; ++j) {
    for (Index i = 0; i < n; ++i) {
      vd(i, j) *= eig.values[static_cast<std::size_t>(j)];
    }
  }
  EXPECT_TRUE(AlmostEqual(MultiplyNT(vd, eig.vectors), a, 1e-8));
  // Descending order.
  for (Index i = 0; i + 1 < n; ++i) {
    EXPECT_GE(eig.values[static_cast<std::size_t>(i)],
              eig.values[static_cast<std::size_t>(i + 1)]);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, EigenSymParamTest,
                         ::testing::Values(1, 2, 3, 8, 16, 40));

TEST(EigenSymTest, GramEigenvaluesAreSquaredSingularValues) {
  Rng rng(32);
  Matrix a = Matrix::GaussianRandom(25, 6, rng);
  SvdResult svd = ThinSvd(a);
  EigenSymResult eig = EigenSym(Gram(a));
  for (Index i = 0; i < 6; ++i) {
    EXPECT_NEAR(eig.values[static_cast<std::size_t>(i)],
                svd.s[static_cast<std::size_t>(i)] *
                    svd.s[static_cast<std::size_t>(i)],
                1e-7 * eig.values[0]);
  }
}

TEST(EigenSymTest, NegativeEigenvaluesHandled) {
  Matrix a({{0, 2}, {2, 0}});  // Eigenvalues +2, -2.
  EigenSymResult eig = EigenSym(a);
  EXPECT_NEAR(eig.values[0], 2.0, 1e-12);
  EXPECT_NEAR(eig.values[1], -2.0, 1e-12);
}

}  // namespace
}  // namespace dtucker
