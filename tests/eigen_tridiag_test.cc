#include "linalg/eigen_tridiag.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "linalg/blas.h"

namespace dtucker {
namespace {

Matrix RandomSymmetric(Index n, uint64_t seed) {
  Rng rng(seed);
  Matrix a = Matrix::GaussianRandom(n, n, rng);
  Matrix s(n, n);
  for (Index i = 0; i < n; ++i) {
    for (Index j = 0; j < n; ++j) s(i, j) = 0.5 * (a(i, j) + a(j, i));
  }
  return s;
}

class EigenQrParamTest : public ::testing::TestWithParam<Index> {};

TEST_P(EigenQrParamTest, Reconstructs) {
  const Index n = GetParam();
  Matrix a = RandomSymmetric(n, 91 + static_cast<uint64_t>(n));
  Result<EigenSymResult> r = EigenSymQr(a);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const EigenSymResult& eig = r.value();

  EXPECT_TRUE(AlmostEqual(MultiplyTN(eig.vectors, eig.vectors),
                          Matrix::Identity(n), 1e-9));
  Matrix vd = eig.vectors;
  for (Index j = 0; j < n; ++j) {
    for (Index i = 0; i < n; ++i) {
      vd(i, j) *= eig.values[static_cast<std::size_t>(j)];
    }
  }
  EXPECT_TRUE(AlmostEqual(MultiplyNT(vd, eig.vectors), a,
                          1e-9 * (1 + a.MaxAbs()) * n));
  for (Index i = 0; i + 1 < n; ++i) {
    EXPECT_GE(eig.values[static_cast<std::size_t>(i)],
              eig.values[static_cast<std::size_t>(i + 1)]);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, EigenQrParamTest,
                         ::testing::Values(1, 2, 3, 5, 10, 25, 60, 120));

TEST(EigenQrTest, AgreesWithJacobi) {
  Matrix a = RandomSymmetric(40, 92);
  Result<EigenSymResult> qr = EigenSymQr(a);
  ASSERT_TRUE(qr.ok());
  EigenSymResult jac = EigenSym(a);
  for (std::size_t i = 0; i < jac.values.size(); ++i) {
    EXPECT_NEAR(qr.value().values[i], jac.values[i],
                1e-9 * (1 + std::fabs(jac.values[0])));
  }
}

TEST(EigenQrTest, DiagonalInput) {
  Result<EigenSymResult> r = EigenSymQr(Matrix::Diagonal({3, 1, 4, 1, 5}));
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.value().values[0], 5, 1e-12);
  EXPECT_NEAR(r.value().values[4], 1, 1e-12);
}

TEST(EigenQrTest, IndefiniteSpectrum) {
  Matrix a({{0, 2}, {2, 0}});
  Result<EigenSymResult> r = EigenSymQr(a);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.value().values[0], 2, 1e-12);
  EXPECT_NEAR(r.value().values[1], -2, 1e-12);
}

TEST(EigenQrTest, RejectsNonSquare) {
  EXPECT_FALSE(EigenSymQr(Matrix(3, 4)).ok());
}

TEST(EigenQrTest, DegenerateEigenvaluesStillOrthonormal) {
  // Identity has a fully degenerate spectrum.
  Result<EigenSymResult> r = EigenSymQr(Matrix::Identity(12));
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(AlmostEqual(MultiplyTN(r.value().vectors, r.value().vectors),
                          Matrix::Identity(12), 1e-10));
  for (double v : r.value().values) EXPECT_NEAR(v, 1.0, 1e-12);
}

}  // namespace
}  // namespace dtucker
