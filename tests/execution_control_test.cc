// Execution-control suite: cooperative cancellation, deadlines, and IO
// fault injection across the D-Tucker phases (see DESIGN.md §10).
#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/run_context.h"
#include "data/generators.h"
#include "data/tensor_file.h"
#include "data/tensor_io.h"
#include "dtucker/dtucker.h"
#include "dtucker/online_dtucker.h"
#include "dtucker/out_of_core.h"
#include "tucker/hosvd.h"
#include "tucker/tucker_als.h"

namespace dtucker {
namespace {

Tensor TestTensor() {
  return MakeLowRankTensor({24, 20, 16}, {4, 4, 4}, /*noise=*/0.1,
                           /*seed=*/7);
}

DTuckerOptions TestOptions(const RunContext* ctx = nullptr) {
  DTuckerOptions opt;
  opt.tucker.ranks = {4, 4, 4};
  opt.tucker.max_iterations = 10;
  opt.tucker.tolerance = 0.0;  // Fixed sweep count: deterministic runs.
  opt.tucker.run_context = ctx;
  return opt;
}

// Fast backoff so the retry tests don't sleep for real.
void UseFastRetry(RunContext* ctx) {
  ctx->io_retry.initial_backoff_seconds = 1e-6;
  ctx->io_retry.max_backoff_seconds = 1e-5;
}

TEST(RunContextTest, CheckReportsCancellationAndDeadline) {
  RunContext ctx;
  EXPECT_EQ(ctx.Check(), StatusCode::kOk);
  EXPECT_FALSE(ctx.armed());

  ctx.SetDeadlineAfter(-1.0);  // Already expired.
  EXPECT_TRUE(ctx.armed());
  EXPECT_EQ(ctx.Check(), StatusCode::kDeadlineExceeded);
  EXPECT_LT(ctx.RemainingSeconds(), 0.0);

  ctx.RequestCancel();  // Cancellation wins over the expired deadline.
  EXPECT_EQ(ctx.Check(), StatusCode::kCancelled);

  ctx.ClearDeadline();
  EXPECT_EQ(ctx.Check(), StatusCode::kCancelled);
  Status st = ctx.CheckStatus("unit test");
  EXPECT_EQ(st.code(), StatusCode::kCancelled);
  EXPECT_NE(st.ToString().find("unit test"), std::string::npos);
}

TEST(RunContextTest, FarDeadlineStaysClear) {
  RunContext ctx;
  ctx.SetDeadlineAfter(3600.0);
  EXPECT_TRUE(ctx.armed());
  EXPECT_EQ(ctx.Check(), StatusCode::kOk);
  EXPECT_GT(ctx.RemainingSeconds(), 3000.0);
}

TEST(IoRetryPolicyTest, BackoffGrowsAndCaps) {
  IoRetryPolicy policy;
  policy.initial_backoff_seconds = 1e-3;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_seconds = 3e-3;
  EXPECT_TRUE(policy.Validate().ok());
  EXPECT_DOUBLE_EQ(policy.BackoffSeconds(0), 1e-3);
  EXPECT_DOUBLE_EQ(policy.BackoffSeconds(1), 2e-3);
  EXPECT_DOUBLE_EQ(policy.BackoffSeconds(2), 3e-3);  // Capped.
  EXPECT_DOUBLE_EQ(policy.BackoffSeconds(9), 3e-3);

  policy.max_attempts = 0;
  EXPECT_EQ(policy.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(BackoffWithContextTest, CancelledContextShortCircuits) {
  RunContext ctx;
  ctx.io_retry.initial_backoff_seconds = 10.0;  // Would sleep 10 s.
  ctx.RequestCancel();
  Status st = BackoffWithContext(ctx.io_retry, /*attempt=*/1, &ctx);
  EXPECT_EQ(st.code(), StatusCode::kCancelled);
}

// --- Deadline at each phase boundary -----------------------------------

TEST(DeadlineTest, ExpiredDeadlineRejectsApproximationPhase) {
  Tensor x = TestTensor();
  RunContext ctx;
  ctx.SetDeadlineAfter(-1.0);

  // Full solve: the approximation phase has no usable partial state, so
  // the interruption is a hard error.
  Result<TuckerDecomposition> full = DTucker(x, TestOptions(&ctx));
  ASSERT_FALSE(full.ok());
  EXPECT_EQ(full.status().code(), StatusCode::kDeadlineExceeded);

  SliceApproximationOptions aopt;
  aopt.slice_rank = 4;
  aopt.run_context = &ctx;
  Result<SliceApproximation> approx = ApproximateSlices(x, aopt);
  ASSERT_FALSE(approx.ok());
  EXPECT_EQ(approx.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(DeadlineTest, ExpiredDeadlineRejectsInitializationPhase) {
  Tensor x = TestTensor();
  SliceApproximationOptions aopt;
  aopt.slice_rank = 4;
  Result<SliceApproximation> approx = ApproximateSlices(x, aopt);
  ASSERT_TRUE(approx.ok());

  RunContext ctx;
  ctx.SetDeadlineAfter(-1.0);
  Result<TuckerDecomposition> r =
      DTuckerFromApproximation(approx.value(), TestOptions(&ctx));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);

  Result<TuckerDecomposition> init =
      DTuckerInitializeOnly(approx.value(), TestOptions(&ctx));
  ASSERT_FALSE(init.ok());
  EXPECT_EQ(init.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(DeadlineTest, DeadlineBetweenSweepsReturnsPartialResult) {
  Tensor x = TestTensor();
  RunContext ctx;
  DTuckerOptions opt = TestOptions(&ctx);
  // Arm an already-expired deadline from inside sweep 1's telemetry
  // callback: the loop observes it at the next pre-sweep checkpoint, so
  // exactly one sweep completes — deterministically.
  opt.sweep_callback = [&ctx](const SweepTelemetry& t) {
    if (t.sweep == 1) ctx.SetDeadlineAfter(-1.0);
  };
  TuckerStats stats;
  Result<TuckerDecomposition> r = DTucker(x, opt, &stats);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(stats.completion, StatusCode::kDeadlineExceeded);
  EXPECT_EQ(stats.iterations, 1);
  ASSERT_EQ(stats.sweep_history.size(), 1u);
  EXPECT_NE(stats.completion_detail.find("DeadlineExceeded"),
            std::string::npos);
  // The partial decomposition is structurally valid.
  EXPECT_TRUE(r.value().Validate().ok());
}

TEST(DeadlineTest, ExpiredDeadlineRejectsBaselines) {
  Tensor x = TestTensor();
  RunContext ctx;
  ctx.SetDeadlineAfter(-1.0);

  Result<TuckerDecomposition> h = Hosvd(x, {4, 4, 4}, &ctx);
  ASSERT_FALSE(h.ok());
  EXPECT_EQ(h.status().code(), StatusCode::kDeadlineExceeded);

  Result<TuckerDecomposition> s = StHosvd(x, {4, 4, 4}, &ctx);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(DeadlineTest, TuckerAlsDeadlineBetweenSweepsReturnsPartial) {
  Tensor x = TestTensor();
  RunContext ctx;
  TuckerAlsOptions opt;
  opt.ranks = {4, 4, 4};
  opt.max_iterations = 8;
  opt.tolerance = 0.0;
  opt.run_context = &ctx;
  // ALS has no sweep callback; arm a deadline that expires almost
  // immediately — the ST-HOSVD init passes the entry check, and the sweep
  // loop observes the expiry at a later checkpoint. Completion is either
  // natural (machine faster than the deadline) or a recorded interruption;
  // both leave a structurally valid decomposition.
  ctx.SetDeadlineAfter(5e-3);
  TuckerStats stats;
  Result<TuckerDecomposition> r = TuckerAls(x, opt, &stats);
  if (r.ok()) {
    EXPECT_TRUE(r.value().Validate().ok());
    if (stats.completion != StatusCode::kOk) {
      EXPECT_EQ(stats.completion, StatusCode::kDeadlineExceeded);
      EXPECT_LT(stats.iterations, 8);
    }
  } else {
    EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
  }
}

// --- Cancellation ------------------------------------------------------

TEST(CancelTest, SecondThreadCancelMidRunReturnsLastCompletedSweep) {
  Tensor x = TestTensor();
  RunContext ctx;
  DTuckerOptions opt = TestOptions(&ctx);

  // Handshake: sweep 1's callback wakes the canceller thread, then blocks
  // until the cancel request is visible — so the interruption lands after
  // exactly one completed sweep, from a different thread than the solver.
  std::atomic<bool> sweep_one_done{false};
  opt.sweep_callback = [&](const SweepTelemetry& t) {
    if (t.sweep != 1) return;
    sweep_one_done.store(true);
    while (!ctx.cancel_requested()) std::this_thread::yield();
  };
  std::thread canceller([&] {
    while (!sweep_one_done.load()) std::this_thread::yield();
    ctx.RequestCancel();
  });

  TuckerStats stats;
  Result<TuckerDecomposition> r = DTucker(x, opt, &stats);
  canceller.join();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(stats.completion, StatusCode::kCancelled);
  EXPECT_EQ(stats.iterations, 1);
  EXPECT_TRUE(r.value().Validate().ok());

  // The partial result must match the state after the last completed
  // sweep: a fresh run budgeted to exactly that many sweeps reproduces it.
  DTuckerOptions ref_opt = TestOptions();
  ref_opt.tucker.max_iterations = 1;
  TuckerStats ref_stats;
  Result<TuckerDecomposition> ref = DTucker(x, ref_opt, &ref_stats);
  ASSERT_TRUE(ref.ok());
  ASSERT_EQ(ref_stats.completion, StatusCode::kOk);
  ASSERT_EQ(r.value().factors.size(), ref.value().factors.size());
  for (std::size_t n = 0; n < ref.value().factors.size(); ++n) {
    EXPECT_TRUE(AlmostEqual(r.value().factors[n], ref.value().factors[n],
                            1e-12));
  }
  EXPECT_TRUE(AlmostEqual(r.value().core, ref.value().core, 1e-12));
  // ... and its fit agrees with the last telemetry record.
  ASSERT_FALSE(stats.sweep_history.empty());
  ASSERT_FALSE(ref_stats.sweep_history.empty());
  EXPECT_DOUBLE_EQ(stats.sweep_history.back().relative_error,
                   ref_stats.sweep_history.back().relative_error);
}

TEST(CancelTest, DTuckerSweepReturnsFalseOnCancelledContext) {
  Tensor x = TestTensor();
  SliceApproximationOptions aopt;
  aopt.slice_rank = 4;
  Result<SliceApproximation> approx = ApproximateSlices(x, aopt);
  ASSERT_TRUE(approx.ok());
  Result<TuckerDecomposition> init =
      DTuckerInitializeOnly(approx.value(), TestOptions());
  ASSERT_TRUE(init.ok());

  RunContext ctx;
  ctx.RequestCancel();
  std::vector<Matrix> factors = init.value().factors;
  Tensor core = init.value().core;
  internal_dtucker::SweepWorkspace ws;
  EXPECT_FALSE(internal_dtucker::DTuckerSweep(approx.value(), {4, 4, 4},
                                              &factors, &core, &ws,
                                              /*s_inv=*/1.0, &ctx));
}

TEST(CancelTest, OnlineInitializeHonorsCancelledContext) {
  Tensor chunk = MakeLowRankTensor({20, 16, 8}, {3, 3, 3}, 0.05, 3);
  RunContext ctx;
  ctx.RequestCancel();
  OnlineDTuckerOptions opt;
  opt.dtucker.tucker.ranks = {3, 3, 3};
  opt.dtucker.tucker.run_context = &ctx;
  OnlineDTucker online(opt);
  Status st = online.Initialize(chunk);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kCancelled);
}

// --- IO fault injection ------------------------------------------------

class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/exec_control_faults.dtnsr";
    tensor_ = MakeLowRankTensor({12, 10, 6}, {3, 3, 3}, 0.05, 11);
    ASSERT_TRUE(SaveTensor(tensor_, path_).ok());
  }

  std::string path_;
  Tensor tensor_;
};

TEST_F(FaultInjectionTest, TransientFaultsRetryThenSucceed) {
  Result<TensorFileReader> reader = TensorFileReader::Open(path_);
  ASSERT_TRUE(reader.ok());

  RunContext ctx;
  UseFastRetry(&ctx);
  std::vector<int> attempts;
  ctx.fault_hook = [&attempts](const char* op, int attempt) -> Status {
    EXPECT_STREQ(op, "ReadFrontalSlices");
    attempts.push_back(attempt);
    if (attempt < 2) return Status::IoError("injected transient fault");
    return Status::OK();
  };

  const Index elems = tensor_.dim(0) * tensor_.dim(1);
  std::vector<double> got(static_cast<std::size_t>(elems));
  ASSERT_TRUE(reader.value()
                  .ReadFrontalSlicesWithRetry(/*first=*/2, /*count=*/1,
                                              got.data(), &ctx)
                  .ok());
  EXPECT_EQ(attempts, (std::vector<int>{0, 1, 2}));

  // The retried read returns exactly what a clean read returns.
  std::vector<double> want(static_cast<std::size_t>(elems));
  ASSERT_TRUE(
      reader.value().ReadFrontalSlices(2, 1, want.data()).ok());
  EXPECT_EQ(got, want);
}

TEST_F(FaultInjectionTest, ExhaustedRetriesReturnUnavailable) {
  Result<TensorFileReader> reader = TensorFileReader::Open(path_);
  ASSERT_TRUE(reader.ok());

  RunContext ctx;
  UseFastRetry(&ctx);
  ctx.io_retry.max_attempts = 3;
  int calls = 0;
  ctx.fault_hook = [&calls](const char*, int) -> Status {
    ++calls;
    return Status::IoError("injected persistent fault");
  };

  const Index elems = tensor_.dim(0) * tensor_.dim(1);
  std::vector<double> buf(static_cast<std::size_t>(elems));
  Status st = reader.value().ReadFrontalSlicesWithRetry(0, 1, buf.data(),
                                                        &ctx);
  EXPECT_EQ(st.code(), StatusCode::kUnavailable);
  EXPECT_EQ(calls, 3);
  EXPECT_NE(st.ToString().find("injected persistent fault"),
            std::string::npos);
}

TEST_F(FaultInjectionTest, OutOfCoreSolveRecoversFromInjectedFaults) {
  DTuckerOptions opt;
  opt.tucker.ranks = {3, 3, 3};
  opt.tucker.max_iterations = 5;
  opt.tucker.tolerance = 0.0;
  TuckerStats clean_stats;
  Result<TuckerDecomposition> clean =
      DTuckerFromFile(path_, opt, &clean_stats);
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();

  // Kill the first attempt of the third read; the retry layer absorbs it.
  RunContext ctx;
  UseFastRetry(&ctx);
  int reads = 0;
  ctx.fault_hook = [&reads](const char*, int attempt) -> Status {
    if (attempt == 0) ++reads;
    if (reads == 3 && attempt == 0) {
      return Status::IoError("injected fault on third read");
    }
    return Status::OK();
  };
  DTuckerOptions faulty_opt = opt;
  faulty_opt.tucker.run_context = &ctx;
  TuckerStats faulty_stats;
  Result<TuckerDecomposition> faulty =
      DTuckerFromFile(path_, faulty_opt, &faulty_stats);
  ASSERT_TRUE(faulty.ok()) << faulty.status().ToString();
  EXPECT_GE(reads, 3);  // The fault actually fired.
  EXPECT_EQ(faulty_stats.completion, StatusCode::kOk);

  // Same final model: the injected fault is invisible in the result.
  ASSERT_FALSE(clean_stats.error_history.empty());
  ASSERT_FALSE(faulty_stats.error_history.empty());
  EXPECT_NEAR(faulty_stats.error_history.back(),
              clean_stats.error_history.back(),
              1e-4 * clean_stats.error_history.back());
  EXPECT_TRUE(AlmostEqual(faulty.value().core, clean.value().core, 1e-12));
}

TEST_F(FaultInjectionTest, CancelledContextAbortsRetryLoop) {
  Result<TensorFileReader> reader = TensorFileReader::Open(path_);
  ASSERT_TRUE(reader.ok());

  RunContext ctx;
  UseFastRetry(&ctx);
  ctx.RequestCancel();
  const Index elems = tensor_.dim(0) * tensor_.dim(1);
  std::vector<double> buf(static_cast<std::size_t>(elems));
  Status st = reader.value().ReadFrontalSlicesWithRetry(0, 1, buf.data(),
                                                        &ctx);
  EXPECT_EQ(st.code(), StatusCode::kCancelled);
}

}  // namespace
}  // namespace dtucker
