#include "fft/fft.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace dtucker {
namespace {

// Reference O(n^2) DFT.
std::vector<Complex> NaiveDft(const std::vector<Complex>& x) {
  const std::size_t n = x.size();
  std::vector<Complex> out(n);
  for (std::size_t k = 0; k < n; ++k) {
    Complex s(0, 0);
    for (std::size_t j = 0; j < n; ++j) {
      double ang = -2.0 * M_PI * static_cast<double>(j * k) /
                   static_cast<double>(n);
      s += x[j] * Complex(std::cos(ang), std::sin(ang));
    }
    out[k] = s;
  }
  return out;
}

class FftParamTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftParamTest, MatchesNaiveDft) {
  const std::size_t n = GetParam();
  Rng rng(41 + n);
  std::vector<Complex> x(n);
  for (auto& v : x) v = Complex(rng.Gaussian(), rng.Gaussian());
  std::vector<Complex> expected = NaiveDft(x);
  std::vector<Complex> got = x;
  Fft(&got);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(got[i].real(), expected[i].real(), 1e-8 * (1 + n));
    EXPECT_NEAR(got[i].imag(), expected[i].imag(), 1e-8 * (1 + n));
  }
}

// Powers of two exercise radix-2; the rest exercise Bluestein.
INSTANTIATE_TEST_SUITE_P(Lengths, FftParamTest,
                         ::testing::Values(1, 2, 4, 8, 64, 3, 5, 7, 12, 100,
                                           129, 255));

TEST(FftTest, RoundTripIdentity) {
  Rng rng(42);
  for (std::size_t n : {16u, 100u, 257u}) {
    std::vector<Complex> x(n);
    for (auto& v : x) v = Complex(rng.Gaussian(), rng.Gaussian());
    std::vector<Complex> y = x;
    Fft(&y);
    InverseFft(&y);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(y[i].real(), x[i].real(), 1e-10);
      EXPECT_NEAR(y[i].imag(), x[i].imag(), 1e-10);
    }
  }
}

TEST(FftTest, ParsevalHolds) {
  Rng rng(43);
  const std::size_t n = 120;  // Non-power-of-two.
  std::vector<Complex> x(n);
  double time_energy = 0;
  for (auto& v : x) {
    v = Complex(rng.Gaussian(), 0);
    time_energy += std::norm(v);
  }
  Fft(&x);
  double freq_energy = 0;
  for (const auto& v : x) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy / static_cast<double>(n), time_energy,
              1e-8 * time_energy);
}

TEST(FftTest, CircularConvolveKnown) {
  // [1,0,0,0] is the identity for circular convolution.
  std::vector<double> delta = {1, 0, 0, 0};
  std::vector<double> x = {1, 2, 3, 4};
  std::vector<double> y = CircularConvolve(delta, x);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_NEAR(y[i], x[i], 1e-12);

  // Shifted delta rotates.
  std::vector<double> shift = {0, 1, 0, 0};
  y = CircularConvolve(shift, x);
  EXPECT_NEAR(y[0], 4, 1e-12);
  EXPECT_NEAR(y[1], 1, 1e-12);
  EXPECT_NEAR(y[2], 2, 1e-12);
  EXPECT_NEAR(y[3], 3, 1e-12);
}

TEST(FftTest, CircularConvolveMatchesDirect) {
  Rng rng(44);
  const std::size_t n = 37;
  std::vector<double> a(n), b(n);
  rng.FillGaussian(a.data(), n);
  rng.FillGaussian(b.data(), n);
  std::vector<double> got = CircularConvolve(a, b);
  for (std::size_t k = 0; k < n; ++k) {
    double expect = 0;
    for (std::size_t j = 0; j < n; ++j) expect += a[j] * b[(k - j + n) % n];
    EXPECT_NEAR(got[k], expect, 1e-9);
  }
}

TEST(FftTest, SpectrumHelpersCompose) {
  Rng rng(45);
  std::vector<double> x(50);
  rng.FillGaussian(x.data(), x.size());
  std::vector<double> y = SpectrumToReal(RealFftSpectrum(x));
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_NEAR(y[i], x[i], 1e-10);
}

}  // namespace
}  // namespace dtucker
