// Randomized stress test for the packed/threaded GEMM kernel: every result
// is cross-checked against a naive triple-loop reference over all four
// transpose combinations, alpha/beta in {0, 1, -0.5}, non-square shapes,
// sub-matrix leading dimensions (ld > rows), and thread counts {1, 4}.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "linalg/blas.h"
#include "linalg/gemm_kernel.h"

namespace dtucker {
namespace {

// A rows x cols column-major buffer with leading dimension ld >= rows; the
// padding rows hold a sentinel so kernels that read or write outside the
// logical sub-matrix corrupt something we can check.
struct Padded {
  Index rows = 0, cols = 0, ld = 0;
  std::vector<double> data;

  Padded(Index r, Index c, Index pad, Rng& rng) : rows(r), cols(c), ld(r + pad) {
    data.assign(static_cast<std::size_t>(ld * c), kSentinel);
    for (Index j = 0; j < c; ++j) {
      for (Index i = 0; i < r; ++i) at(i, j) = rng.Gaussian();
    }
  }

  double& at(Index i, Index j) {
    return data[static_cast<std::size_t>(i + j * ld)];
  }
  double at(Index i, Index j) const {
    return data[static_cast<std::size_t>(i + j * ld)];
  }

  bool PaddingIntact() const {
    for (Index j = 0; j < cols; ++j) {
      for (Index i = rows; i < ld; ++i) {
        if (at(i, j) != kSentinel) return false;
      }
    }
    return true;
  }

  static constexpr double kSentinel = -7.25e18;
};

// Reference C = alpha * op(A) * op(B) + beta * C, naive triple loop.
void NaiveGemm(Trans ta, Trans tb, Index m, Index n, Index k, double alpha,
               const Padded& a, const Padded& b, double beta, Padded* c) {
  for (Index j = 0; j < n; ++j) {
    for (Index i = 0; i < m; ++i) {
      double s = 0;
      for (Index l = 0; l < k; ++l) {
        const double av = ta == Trans::kNo ? a.at(i, l) : a.at(l, i);
        const double bv = tb == Trans::kNo ? b.at(l, j) : b.at(j, l);
        s += av * bv;
      }
      c->at(i, j) = alpha * s + beta * c->at(i, j);
    }
  }
}

struct Shape {
  Index m, n, k;
};

// Shapes chosen to hit: tiny and prime edges, the thin fast paths (n <= 16
// and m <= 16 with a large counterpart), the packed path with full and
// partial micro-tiles, and blocks crossing the MC/KC cache boundaries.
const Shape kShapes[] = {
    {1, 1, 1},      {3, 5, 4},     {17, 19, 23},  {64, 64, 64},
    {300, 10, 40},  {10, 300, 40}, {40, 40, 500}, {129, 65, 257},
    {150, 140, 330},
};

const double kAlphas[] = {0.0, 1.0, -0.5};
const double kBetas[] = {0.0, 1.0, -0.5};
const Trans kTrans[] = {Trans::kNo, Trans::kYes};

void RunSweep(Index pad) {
  Rng rng(1234 + static_cast<uint64_t>(pad));
  for (const Shape& sh : kShapes) {
    for (Trans ta : kTrans) {
      for (Trans tb : kTrans) {
        // Stored shapes of A and B given the op orientation.
        const Index ar = ta == Trans::kNo ? sh.m : sh.k;
        const Index ac = ta == Trans::kNo ? sh.k : sh.m;
        const Index br = tb == Trans::kNo ? sh.k : sh.n;
        const Index bc = tb == Trans::kNo ? sh.n : sh.k;
        Padded a(ar, ac, pad, rng);
        Padded b(br, bc, pad, rng);
        Padded c0(sh.m, sh.n, pad, rng);
        for (double alpha : kAlphas) {
          for (double beta : kBetas) {
            Padded c = c0;
            Padded expected = c0;
            NaiveGemm(ta, tb, sh.m, sh.n, sh.k, alpha, a, b, beta, &expected);
            GemmRaw(ta, tb, sh.m, sh.n, sh.k, alpha, a.data.data(), a.ld,
                    b.data.data(), b.ld, beta, c.data.data(), c.ld);
            double max_ref = 0, max_diff = 0;
            for (Index j = 0; j < sh.n; ++j) {
              for (Index i = 0; i < sh.m; ++i) {
                max_ref = std::max(max_ref, std::fabs(expected.at(i, j)));
                max_diff = std::max(
                    max_diff, std::fabs(c.at(i, j) - expected.at(i, j)));
              }
            }
            EXPECT_LE(max_diff, 1e-12 * std::max(max_ref, 1.0))
                << "m=" << sh.m << " n=" << sh.n << " k=" << sh.k
                << " ta=" << (ta == Trans::kYes) << " tb=" << (tb == Trans::kYes)
                << " alpha=" << alpha << " beta=" << beta << " pad=" << pad
                << " threads=" << GetBlasThreads();
            EXPECT_TRUE(c.PaddingIntact())
                << "kernel wrote outside the sub-matrix (pad rows)";
          }
        }
        EXPECT_TRUE(a.PaddingIntact());
        EXPECT_TRUE(b.PaddingIntact());
      }
    }
  }
}

class GemmStressTest : public ::testing::Test {
 protected:
  void TearDown() override { SetBlasThreads(1); }
};

TEST_F(GemmStressTest, SerialTightLd) {
  SetBlasThreads(1);
  RunSweep(/*pad=*/0);
}

TEST_F(GemmStressTest, SerialPaddedLd) {
  SetBlasThreads(1);
  RunSweep(/*pad=*/3);
}

TEST_F(GemmStressTest, FourThreadsTightLd) {
  SetBlasThreads(4);
  RunSweep(/*pad=*/0);
}

TEST_F(GemmStressTest, FourThreadsPaddedLd) {
  SetBlasThreads(4);
  RunSweep(/*pad=*/3);
}

// Threaded runs must be bit-identical to serial ones: the row-block
// partition fixes each output element's summation order regardless of
// which worker executes it.
TEST_F(GemmStressTest, ThreadedMatchesSerialBitwise) {
  Rng rng(77);
  const Index m = 384, n = 384, k = 384;
  Padded a(m, k, 2, rng);
  Padded b(k, n, 2, rng);
  Padded serial(m, n, 2, rng);
  Padded threaded = serial;
  SetBlasThreads(1);
  GemmRaw(Trans::kNo, Trans::kYes, m, n, k, 1.0, a.data.data(), a.ld,
          b.data.data(), b.ld, 0.0, serial.data.data(), serial.ld);
  SetBlasThreads(4);
  GemmRaw(Trans::kNo, Trans::kYes, m, n, k, 1.0, a.data.data(), a.ld,
          b.data.data(), b.ld, 0.0, threaded.data.data(), threaded.ld);
  for (Index j = 0; j < n; ++j) {
    for (Index i = 0; i < m; ++i) {
      ASSERT_EQ(serial.at(i, j), threaded.at(i, j))
          << "divergence at (" << i << ", " << j << ")";
    }
  }
}

// The Gemv fast paths share the pool; sanity-check both orientations at a
// size that crosses the threading threshold.
TEST_F(GemmStressTest, ThreadedGemvMatchesSerial) {
  Rng rng(88);
  const Index m = 2048, n = 600;
  Padded a(m, n, 1, rng);
  std::vector<double> x(static_cast<std::size_t>(n)), y1(
      static_cast<std::size_t>(m), 0.5), y4 = y1;
  for (double& v : x) v = rng.Gaussian();
  SetBlasThreads(1);
  GemvRaw(Trans::kNo, m, n, 2.0, a.data.data(), a.ld, x.data(), -0.5,
          y1.data());
  SetBlasThreads(4);
  GemvRaw(Trans::kNo, m, n, 2.0, a.data.data(), a.ld, x.data(), -0.5,
          y4.data());
  for (std::size_t i = 0; i < y1.size(); ++i) ASSERT_EQ(y1[i], y4[i]);

  std::vector<double> xt(static_cast<std::size_t>(m)),
      z1(static_cast<std::size_t>(n), 1.0), z4 = z1;
  for (double& v : xt) v = rng.Gaussian();
  SetBlasThreads(1);
  GemvRaw(Trans::kYes, m, n, 1.0, a.data.data(), a.ld, xt.data(), 1.0,
          z1.data());
  SetBlasThreads(4);
  GemvRaw(Trans::kYes, m, n, 1.0, a.data.data(), a.ld, xt.data(), 1.0,
          z4.data());
  for (std::size_t i = 0; i < z1.size(); ++i) ASSERT_EQ(z1[i], z4[i]);
}

// The pack buffers must satisfy the alignment the micro-kernel's vector
// loads assume.
TEST_F(GemmStressTest, PackBuffersAligned) {
  for (std::size_t n : {std::size_t{64}, std::size_t{100000}}) {
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(TlsPackBufferA(n)) %
                  kGemmPackAlignment,
              0u);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(TlsPackBufferB(n)) %
                  kGemmPackAlignment,
              0u);
  }
}

}  // namespace
}  // namespace dtucker
