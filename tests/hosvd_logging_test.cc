// Focused tests for the HOSVD helper kernels and the logging/CHECK macros.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "data/generators.h"
#include "linalg/blas.h"
#include "linalg/svd.h"
#include "tensor/tensor_ops.h"
#include "tucker/hosvd.h"

namespace dtucker {
namespace {

TEST(GramSingularVectorsTest, SubspaceMatchesExactSvd) {
  // Graded spectrum so the leading subspace is well separated.
  Rng rng(1);
  Matrix u = Matrix::GaussianRandom(30, 30, rng);
  SvdResult su = ThinSvd(u);
  Matrix base = su.u;  // Orthonormal 30x30.
  Matrix scaled = base;
  for (Index j = 0; j < 30; ++j) {
    Scal(std::pow(0.6, static_cast<double>(j)), scaled.col_data(j), 30);
  }
  Matrix a = MultiplyNT(scaled, base);  // Known singular structure.

  const Index k = 5;
  Matrix via_gram = LeadingLeftSingularVectorsViaGram(a, k);
  Matrix exact = LeadingLeftSingularVectors(a, k);
  Matrix p1 = MultiplyNT(via_gram, via_gram);
  Matrix p2 = MultiplyNT(exact, exact);
  EXPECT_LT((p1 - p2).MaxAbs(), 1e-6);
  EXPECT_TRUE(AlmostEqual(MultiplyTN(via_gram, via_gram),
                          Matrix::Identity(k), 1e-9));
}

TEST(GramSingularVectorsTest, WideMatrix) {
  Rng rng(2);
  Matrix a = Matrix::GaussianRandom(8, 500, rng);
  Matrix v = LeadingLeftSingularVectorsViaGram(a, 3);
  EXPECT_EQ(v.rows(), 8);
  EXPECT_EQ(v.cols(), 3);
  EXPECT_TRUE(AlmostEqual(MultiplyTN(v, v), Matrix::Identity(3), 1e-9));
}

TEST(HosvdTest, ErrorBoundedBySumOfModeTails) {
  // The HOSVD quasi-optimality bound: ||X - X^||^2 <= sum_n tail_n.
  Tensor x = MakeLowRankTensor({12, 11, 10}, {6, 6, 6}, 0.3, 3);
  std::vector<Index> ranks = {3, 3, 3};
  TuckerDecomposition dec = Hosvd(x, ranks).ValueOrDie();
  double tail_sum = 0;
  for (Index n = 0; n < 3; ++n) {
    Matrix unf = Unfold(x, n);
    SvdResult svd = ThinSvd(unf);
    for (std::size_t i = 3; i < svd.s.size(); ++i) {
      tail_sum += svd.s[i] * svd.s[i];
    }
  }
  const double err2 =
      dec.RelativeErrorAgainst(x) * x.SquaredNorm();
  EXPECT_LE(err2, tail_sum * (1 + 1e-9));
}

TEST(LoggingTest, ThresholdRoundTrip) {
  using internal_logging::GetLogThreshold;
  using internal_logging::LogLevel;
  using internal_logging::SetLogThreshold;
  const LogLevel original = GetLogThreshold();
  SetLogThreshold(LogLevel::kError);
  EXPECT_EQ(GetLogThreshold(), LogLevel::kError);
  SetLogThreshold(original);
}

TEST(LoggingTest, LogMacrosDoNotCrash) {
  DT_LOG(DEBUG) << "debug message " << 42;
  DT_LOG(INFO) << "info message";
  DT_LOG(WARNING) << "warning message";
  SUCCEED();
}

TEST(LoggingTest, ConcurrentLogLinesAreNotInterleaved) {
  // LogMessage assembles the whole line and emits it with a single
  // fwrite, so lines from concurrent threads must never shred each other.
  constexpr int kThreads = 8;
  constexpr int kLines = 50;
  ::testing::internal::CaptureStderr();
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kLines; ++i) {
        DT_LOG(INFO) << "atomictest thread=" << t << " line=" << i
                     << " endmarker";
      }
    });
  }
  for (auto& th : threads) th.join();
  const std::string captured = ::testing::internal::GetCapturedStderr();

  // Every emitted line that mentions the test marker must be whole:
  // exactly one "atomictest" and one "endmarker", in order.
  int whole_lines = 0;
  std::istringstream stream(captured);
  std::string line;
  while (std::getline(stream, line)) {
    const auto first = line.find("atomictest");
    if (first == std::string::npos) continue;
    EXPECT_EQ(line.find("atomictest", first + 1), std::string::npos)
        << "two log records merged into one line: " << line;
    const auto marker = line.find("endmarker");
    ASSERT_NE(marker, std::string::npos)
        << "log record was split mid-line: " << line;
    EXPECT_EQ(line.find("endmarker", marker + 1), std::string::npos);
    ++whole_lines;
  }
  EXPECT_EQ(whole_lines, kThreads * kLines);
}

TEST(HosvdTest, SolvePhaseIsAccountedInGlobalPhaseTimer) {
  // Hosvd/StHosvd report their wall time through the same PhaseTimer
  // channel the D-Tucker phases use (see DESIGN.md §9).
  Tensor x = MakeLowRankTensor({10, 9, 8}, {3, 3, 3}, 0.2, 5);
  const double hosvd_before = GlobalPhaseTimer().Total("hosvd.solve");
  const double sthosvd_before = GlobalPhaseTimer().Total("sthosvd.solve");
  (void)Hosvd(x, {3, 3, 3});
  (void)StHosvd(x, {3, 3, 3});
  EXPECT_GT(GlobalPhaseTimer().Total("hosvd.solve"), hosvd_before);
  EXPECT_GT(GlobalPhaseTimer().Total("sthosvd.solve"), sthosvd_before);
}

TEST(LoggingDeathTest, CheckFailureAborts) {
  EXPECT_DEATH({ DT_CHECK(1 == 2) << "boom"; }, "Check failed");
  EXPECT_DEATH({ DT_CHECK_EQ(3, 4); }, "Check failed");
  EXPECT_DEATH({ DT_CHECK_LT(5, 4); }, "Check failed");
}

TEST(LoggingTest, PassingChecksAreSilentNoops) {
  DT_CHECK(true);
  DT_CHECK_EQ(2, 2);
  DT_CHECK_LE(2, 3);
  DT_CHECK_GE(3, 2);
  DT_CHECK_NE(1, 2);
  DT_DCHECK(true);
  SUCCEED();
}

}  // namespace
}  // namespace dtucker
