// Property-based identity tests for the tensor algebra, swept across
// orders and shapes. These are the invariants the solvers silently rely
// on; a regression in any kernel shows up here first.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "linalg/blas.h"
#include "linalg/qr.h"
#include "tensor/tensor_ops.h"
#include "tensor/tensor_utils.h"

namespace dtucker {
namespace {

class ShapeSweepTest
    : public ::testing::TestWithParam<std::vector<Index>> {};

TEST_P(ShapeSweepTest, UnfoldingPreservesNorm) {
  Rng rng(1);
  Tensor x = Tensor::GaussianRandom(GetParam(), rng);
  for (Index n = 0; n < x.order(); ++n) {
    EXPECT_NEAR(Unfold(x, n).SquaredNorm(), x.SquaredNorm(),
                1e-10 * x.SquaredNorm())
        << "mode " << n;
  }
}

TEST_P(ShapeSweepTest, OrthogonalModeProductPreservesNorm) {
  // X x_n Q^T with square orthogonal Q is an isometry.
  Rng rng(2);
  Tensor x = Tensor::GaussianRandom(GetParam(), rng);
  for (Index n = 0; n < x.order(); ++n) {
    Matrix q = QrOrthonormalize(
        Matrix::GaussianRandom(x.dim(n), x.dim(n), rng));
    Tensor y = ModeProduct(x, q, n, Trans::kYes);
    EXPECT_NEAR(y.SquaredNorm(), x.SquaredNorm(), 1e-9 * x.SquaredNorm())
        << "mode " << n;
    // And invertible: contracting back recovers X.
    Tensor back = ModeProduct(y, q, n, Trans::kNo);
    EXPECT_TRUE(AlmostEqual(back, x, 1e-9)) << "mode " << n;
  }
}

TEST_P(ShapeSweepTest, ModeProductAdjointIdentity) {
  // <X x_n A, Y> = <X, Y x_n A^T> (A: J x I_n).
  Rng rng(3);
  Tensor x = Tensor::GaussianRandom(GetParam(), rng);
  for (Index n = 0; n < x.order(); ++n) {
    const Index j = 3;
    Matrix a = Matrix::GaussianRandom(j, x.dim(n), rng);
    std::vector<Index> y_shape = x.shape();
    y_shape[static_cast<std::size_t>(n)] = j;
    Tensor y = Tensor::GaussianRandom(y_shape, rng);
    const double lhs = InnerProduct(ModeProduct(x, a, n), y);
    const double rhs = InnerProduct(x, ModeProduct(y, a.Transposed(), n));
    EXPECT_NEAR(lhs, rhs, 1e-8 * (std::fabs(lhs) + 1)) << "mode " << n;
  }
}

TEST_P(ShapeSweepTest, PermutationIsNormPreservingBijection) {
  Rng rng(4);
  Tensor x = Tensor::GaussianRandom(GetParam(), rng);
  // Reverse-mode permutation and its inverse.
  std::vector<Index> perm(static_cast<std::size_t>(x.order()));
  for (Index k = 0; k < x.order(); ++k) {
    perm[static_cast<std::size_t>(k)] = x.order() - 1 - k;
  }
  Tensor p = x.Permuted(perm);
  EXPECT_NEAR(p.SquaredNorm(), x.SquaredNorm(), 1e-12 * x.SquaredNorm());
  EXPECT_TRUE(AlmostEqual(p.Permuted(perm), x, 0.0));  // Self-inverse here.
}

TEST_P(ShapeSweepTest, SubTensorConcatenateRoundTripAllModes) {
  Rng rng(5);
  Tensor x = Tensor::GaussianRandom(GetParam(), rng);
  for (Index n = 0; n < x.order(); ++n) {
    if (x.dim(n) < 2) continue;
    const Index split = x.dim(n) / 2;
    Tensor a = SubTensor(x, n, 0, split).value();
    Tensor b = SubTensor(x, n, split, x.dim(n) - split).value();
    EXPECT_TRUE(AlmostEqual(Concatenate(a, b, n).value(), x, 0.0))
        << "mode " << n;
  }
}

TEST_P(ShapeSweepTest, UnfoldKroneckerContractionIdentity) {
  // (X x_{k != n} A_k)_(n) = X_(n) * Kron(descending A_k)^T for every n.
  Rng rng(6);
  Tensor x = Tensor::GaussianRandom(GetParam(), rng);
  if (x.order() < 3) GTEST_SKIP();
  std::vector<Matrix> mats;
  for (Index k = 0; k < x.order(); ++k) {
    mats.push_back(Matrix::GaussianRandom(2, x.dim(k), rng));
  }
  for (Index n = 0; n < x.order(); ++n) {
    Tensor y = x;
    for (Index k = 0; k < x.order(); ++k) {
      if (k != n) y = ModeProduct(y, mats[static_cast<std::size_t>(k)], k);
    }
    // Kron in descending mode order excluding n.
    Matrix kron;
    bool first = true;
    for (Index k = x.order() - 1; k >= 0; --k) {
      if (k == n) continue;
      kron = first ? mats[static_cast<std::size_t>(k)]
                   : Kronecker(kron, mats[static_cast<std::size_t>(k)]);
      first = false;
    }
    Matrix rhs = MultiplyNT(Unfold(x, n), kron);
    EXPECT_TRUE(AlmostEqual(Unfold(y, n), rhs, 1e-8)) << "mode " << n;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ShapeSweepTest,
    ::testing::Values(std::vector<Index>{7, 5},
                      std::vector<Index>{4, 5, 6},
                      std::vector<Index>{6, 4, 2, 3},
                      std::vector<Index>{3, 2, 2, 2, 3},
                      std::vector<Index>{1, 5, 4},
                      std::vector<Index>{5, 1, 4}));

TEST(IdentityTest, KroneckerTransposeDistributes) {
  Rng rng(7);
  Matrix a = Matrix::GaussianRandom(3, 4, rng);
  Matrix b = Matrix::GaussianRandom(2, 5, rng);
  EXPECT_TRUE(AlmostEqual(Kronecker(a, b).Transposed(),
                          Kronecker(a.Transposed(), b.Transposed()), 1e-12));
}

TEST(IdentityTest, KroneckerNormMultiplies) {
  Rng rng(8);
  Matrix a = Matrix::GaussianRandom(3, 4, rng);
  Matrix b = Matrix::GaussianRandom(2, 5, rng);
  EXPECT_NEAR(Kronecker(a, b).FrobeniusNorm(),
              a.FrobeniusNorm() * b.FrobeniusNorm(), 1e-10);
}

TEST(IdentityTest, KhatriRaoViaGramHadamard) {
  // (A (*) B)^T (A (*) B) = (A^T A) .* (B^T B) — the identity CP-ALS uses.
  Rng rng(9);
  Matrix a = Matrix::GaussianRandom(6, 3, rng);
  Matrix b = Matrix::GaussianRandom(5, 3, rng);
  Matrix kr = KhatriRao(a, b);
  Matrix lhs = Gram(kr);
  Matrix ga = Gram(a);
  Matrix gb = Gram(b);
  for (Index i = 0; i < 3; ++i) {
    for (Index j = 0; j < 3; ++j) {
      EXPECT_NEAR(lhs(i, j), ga(i, j) * gb(i, j), 1e-10);
    }
  }
}

}  // namespace
}  // namespace dtucker
