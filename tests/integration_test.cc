// Cross-module integration tests: the full pipeline from dataset
// generation through every decomposition method, checking the paper's
// qualitative claims end to end on small instances.
#include <gtest/gtest.h>

#include "baselines/registry.h"
#include "common/rng.h"
#include "common/timer.h"
#include "data/datasets.h"
#include "data/generators.h"
#include "dtucker/dtucker.h"
#include "dtucker/online_dtucker.h"
#include "tucker/tucker_als.h"

namespace dtucker {
namespace {

// D-Tucker vs Tucker-ALS on each (tiny) dataset analog: comparable error.
class DatasetAccuracyTest : public ::testing::TestWithParam<const char*> {};

TEST_P(DatasetAccuracyTest, DTuckerComparableToAls) {
  // Scale must be large enough that slice compression actually compresses
  // (Js well below min(I1, I2)); 0.15 keeps every analog in that regime.
  Result<Tensor> data = MakeDataset(GetParam(), /*scale=*/0.15);
  ASSERT_TRUE(data.ok());
  const Tensor& x = data.value();

  std::vector<Index> ranks(static_cast<std::size_t>(x.order()));
  for (Index n = 0; n < x.order(); ++n) {
    ranks[static_cast<std::size_t>(n)] = std::min<Index>(5, x.dim(n));
  }

  MethodOptions opt;
  opt.tucker.ranks = ranks;
  opt.tucker.max_iterations = 10;
  Result<MethodRun> dt = RunTuckerMethod(TuckerMethod::kDTucker, x, opt);
  Result<MethodRun> als = RunTuckerMethod(TuckerMethod::kTuckerAls, x, opt);
  ASSERT_TRUE(dt.ok()) << dt.status().ToString();
  ASSERT_TRUE(als.ok()) << als.status().ToString();

  // "Comparable accuracy": within a small absolute and relative band.
  EXPECT_LT(dt.value().relative_error,
            als.value().relative_error * 1.25 + 0.02)
      << GetParam() << ": D-Tucker " << dt.value().relative_error << " ALS "
      << als.value().relative_error;
  // Less storage.
  EXPECT_LT(dt.value().stored_bytes, als.value().stored_bytes);
}

INSTANTIATE_TEST_SUITE_P(Datasets, DatasetAccuracyTest,
                         ::testing::Values("video", "stock", "traffic",
                                           "music", "climate"));

TEST(IntegrationTest, DTuckerFasterThanAlsOnLargerInstance) {
  // The headline speed claim, at a size where the asymptotics show.
  Tensor x = MakeLowRankTensor({120, 100, 60}, {5, 5, 5}, 0.1, 1);
  MethodOptions opt;
  opt.tucker.ranks = {5, 5, 5};
  opt.tucker.max_iterations = 5;
  opt.tucker.tolerance = 0.0;  // Same sweep count for both.
  Result<MethodRun> dt = RunTuckerMethod(TuckerMethod::kDTucker, x, opt,
                                         /*measure_error=*/false);
  Result<MethodRun> als = RunTuckerMethod(TuckerMethod::kTuckerAls, x, opt,
                                          /*measure_error=*/false);
  ASSERT_TRUE(dt.ok() && als.ok());
  EXPECT_LT(dt.value().stats.TotalSeconds(), als.value().stats.TotalSeconds())
      << "D-Tucker " << dt.value().stats.TotalSeconds() << "s vs ALS "
      << als.value().stats.TotalSeconds() << "s";
}

TEST(IntegrationTest, PreprocessOnceQueryManyIsCheaper) {
  // The query-phase story: re-decomposing from the compressed form is much
  // cheaper than recompressing.
  Tensor x = MakeLowRankTensor({150, 130, 80}, {6, 6, 6}, 0.1, 2);
  SliceApproximationOptions sopt;
  sopt.slice_rank = 8;
  Timer compress_timer;
  Result<SliceApproximation> approx = ApproximateSlices(x, sopt);
  ASSERT_TRUE(approx.ok());
  const double compress_seconds = compress_timer.Seconds();

  DTuckerOptions qopt;
  qopt.tucker.ranks = {4, 4, 4};
  qopt.tucker.max_iterations = 3;
  Timer query_timer;
  Result<TuckerDecomposition> dec =
      DTuckerFromApproximation(approx.value(), qopt);
  ASSERT_TRUE(dec.ok());
  const double query_seconds = query_timer.Seconds();
  EXPECT_LT(query_seconds, compress_seconds);
}

TEST(IntegrationTest, StreamingMatchesBatchOnDataset) {
  Result<Tensor> data = MakeDataset("stock", 0.08);
  ASSERT_TRUE(data.ok());
  const Tensor& x = data.value();
  const Index t_total = x.dim(2);
  const Index t_half = t_total / 2;

  OnlineDTuckerOptions opt;
  opt.dtucker.tucker.ranks = {5, 5, 5};
  opt.dtucker.tucker.max_iterations = 10;
  opt.refit_sweeps = 3;
  OnlineDTucker online(opt);
  ASSERT_TRUE(online.Initialize(x.LastModeSlice(0, t_half)).ok());
  ASSERT_TRUE(online.Append(x.LastModeSlice(t_half, t_total - t_half)).ok());

  DTuckerOptions bopt;
  bopt.tucker.ranks = {5, 5, 5};
  bopt.tucker.max_iterations = 10;
  Result<TuckerDecomposition> batch = DTucker(x, bopt);
  ASSERT_TRUE(batch.ok());

  const double online_err = online.decomposition().RelativeErrorAgainst(x);
  const double batch_err = batch.value().RelativeErrorAgainst(x);
  EXPECT_LT(online_err, batch_err + 0.03);
}

TEST(IntegrationTest, AllMethodsAgreeOnExactlyLowRankInput) {
  // On a noiseless low-rank tensor every method should reach (near) zero
  // error — a strong cross-implementation consistency check.
  Tensor x = MakeLowRankTensor({18, 16, 14}, {3, 3, 3}, 0.0, 3);
  MethodOptions opt;
  opt.tucker.ranks = {3, 3, 3};
  opt.tucker.max_iterations = 25;
  opt.mach_sample_rate = 1.0;  // Lossless sampling.
  opt.sketch_factor = 12.0;
  for (TuckerMethod m : AllTuckerMethods()) {
    Result<MethodRun> run = RunTuckerMethod(m, x, opt);
    ASSERT_TRUE(run.ok()) << TuckerMethodName(m);
    // Tucker-ttmts estimates the core through a sketched matrix product
    // and carries an O(1/sqrt(s)) noise floor even on exact-rank data;
    // everyone else should be near-exact.
    const double bound = m == TuckerMethod::kTuckerTtmts ? 0.15 : 5e-2;
    EXPECT_LT(run.value().relative_error, bound) << TuckerMethodName(m);
  }
}

TEST(IntegrationTest, FourOrderPipelineAllPhases) {
  Result<Tensor> data = MakeDataset("climate", 0.12);
  ASSERT_TRUE(data.ok());
  const Tensor& x = data.value();
  ASSERT_EQ(x.order(), 4);

  DTuckerOptions opt;
  opt.tucker.ranks = {4, 4, 3, 4};
  opt.tucker.max_iterations = 8;
  TuckerStats stats;
  Result<TuckerDecomposition> dec = DTucker(x, opt, &stats);
  ASSERT_TRUE(dec.ok());
  EXPECT_LT(dec.value().RelativeErrorAgainst(x), 0.15);
  EXPECT_LT(stats.working_bytes, x.ByteSize());
}

}  // namespace
}  // namespace dtucker
