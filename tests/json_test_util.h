// A minimal recursive-descent JSON parser for test assertions.
//
// Parses the full JSON grammar (objects, arrays, strings with escapes,
// numbers, true/false/null) into a JsonValue tree. Tests use it to verify
// that exporter output round-trips as valid JSON and to navigate into the
// emitted structure; not meant for production parsing.
#ifndef DTUCKER_TESTS_JSON_TEST_UTIL_H_
#define DTUCKER_TESTS_JSON_TEST_UTIL_H_

#include <cctype>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace dtucker {
namespace json_test {

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool bool_value = false;
  double number_value = 0;
  std::string string_value;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool IsObject() const { return type == Type::kObject; }
  bool IsArray() const { return type == Type::kArray; }
  bool Has(const std::string& key) const {
    return type == Type::kObject && object.count(key) > 0;
  }
  const JsonValue& at(const std::string& key) const {
    return object.at(key);
  }
};

class JsonParser {
 public:
  // Returns true and fills *out when `text` is a single valid JSON value
  // (with only whitespace trailing).
  static bool Parse(const std::string& text, JsonValue* out) {
    JsonParser p(text);
    if (!p.ParseValue(out)) return false;
    p.SkipWs();
    return p.pos_ == text.size();
  }

 private:
  explicit JsonParser(const std::string& text) : text_(text) {}

  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ParseLiteral(const char* lit) {
    std::size_t n = 0;
    while (lit[n]) ++n;
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) return false;
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        char e = text_[pos_++];
        switch (e) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'n': out->push_back('\n'); break;
          case 'r': out->push_back('\r'); break;
          case 't': out->push_back('\t'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return false;
            for (int i = 0; i < 4; ++i) {
              if (!std::isxdigit(
                      static_cast<unsigned char>(text_[pos_ + i]))) {
                return false;
              }
            }
            // Tests only need validity, not exact code-point decoding.
            out->push_back('?');
            pos_ += 4;
            break;
          }
          default: return false;
        }
      } else {
        out->push_back(c);
      }
    }
    return false;  // Unterminated.
  }

  bool ParseValue(JsonValue* out) {
    SkipWs();
    if (pos_ >= text_.size()) return false;
    const char c = text_[pos_];
    if (c == '{') return ParseObject(out);
    if (c == '[') return ParseArray(out);
    if (c == '"') {
      out->type = JsonValue::Type::kString;
      return ParseString(&out->string_value);
    }
    if (c == 't') {
      out->type = JsonValue::Type::kBool;
      out->bool_value = true;
      return ParseLiteral("true");
    }
    if (c == 'f') {
      out->type = JsonValue::Type::kBool;
      out->bool_value = false;
      return ParseLiteral("false");
    }
    if (c == 'n') {
      out->type = JsonValue::Type::kNull;
      return ParseLiteral("null");
    }
    return ParseNumber(out);
  }

  bool ParseNumber(JsonValue* out) {
    const char* start = text_.c_str() + pos_;
    char* end = nullptr;
    const double v = std::strtod(start, &end);
    if (end == start) return false;
    out->type = JsonValue::Type::kNumber;
    out->number_value = v;
    pos_ += static_cast<std::size_t>(end - start);
    return true;
  }

  bool ParseObject(JsonValue* out) {
    if (!Consume('{')) return false;
    out->type = JsonValue::Type::kObject;
    SkipWs();
    if (Consume('}')) return true;
    for (;;) {
      SkipWs();
      std::string key;
      if (!ParseString(&key)) return false;
      if (!Consume(':')) return false;
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->object.emplace(std::move(key), std::move(value));
      if (Consume(',')) continue;
      return Consume('}');
    }
  }

  bool ParseArray(JsonValue* out) {
    if (!Consume('[')) return false;
    out->type = JsonValue::Type::kArray;
    SkipWs();
    if (Consume(']')) return true;
    for (;;) {
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->array.push_back(std::move(value));
      if (Consume(',')) continue;
      return Consume(']');
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace json_test
}  // namespace dtucker

#endif  // DTUCKER_TESTS_JSON_TEST_UTIL_H_
