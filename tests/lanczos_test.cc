#include "linalg/lanczos.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "linalg/blas.h"
#include "linalg/eigen_sym.h"

namespace dtucker {
namespace {

Matrix SymmetricWithSpectrum(const std::vector<double>& eigenvalues,
                             uint64_t seed) {
  const Index n = static_cast<Index>(eigenvalues.size());
  Rng rng(seed);
  Matrix q = Matrix::GaussianRandom(n, n, rng);
  // Orthogonalize via Gram-Schmidt-free route: use EigenSym of a random
  // symmetric matrix to get an orthogonal basis.
  Matrix s(n, n);
  for (Index i = 0; i < n; ++i) {
    for (Index j = 0; j < n; ++j) s(i, j) = 0.5 * (q(i, j) + q(j, i));
  }
  Matrix basis = EigenSym(s).vectors;
  Matrix scaled = basis;
  for (Index j = 0; j < n; ++j) {
    for (Index i = 0; i < n; ++i) {
      scaled(i, j) *= eigenvalues[static_cast<std::size_t>(j)];
    }
  }
  return MultiplyNT(scaled, basis);
}

TEST(LanczosTest, ValidatesInput) {
  Matrix a(3, 4);
  EXPECT_FALSE(LanczosTopEigenpairs(a, 1).ok());
  Matrix b = Matrix::Identity(4);
  EXPECT_FALSE(LanczosTopEigenpairs(b, 0).ok());
  EXPECT_FALSE(LanczosTopEigenpairs(b, 5).ok());
}

TEST(LanczosTest, RecoversIsolatedLeadingEigenvalues) {
  std::vector<double> spectrum = {100, 50, 25, 10, 5, 2, 1, 0.5, 0.2, 0.1};
  Matrix a = SymmetricWithSpectrum(spectrum, 1);
  Result<LanczosResult> r = LanczosTopEigenpairs(a, 3);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.value().values[0], 100, 1e-8);
  EXPECT_NEAR(r.value().values[1], 50, 1e-8);
  EXPECT_NEAR(r.value().values[2], 25, 1e-8);
}

TEST(LanczosTest, VectorsAreEigenvectors) {
  std::vector<double> spectrum;
  for (int i = 0; i < 40; ++i) spectrum.push_back(std::pow(0.8, i) * 10);
  Matrix a = SymmetricWithSpectrum(spectrum, 2);
  const Index k = 5;
  Result<LanczosResult> r = LanczosTopEigenpairs(a, k);
  ASSERT_TRUE(r.ok());
  // ||A v - lambda v|| small for each pair.
  for (Index i = 0; i < k; ++i) {
    Matrix v = r.value().vectors.Col(i);
    Matrix av = Multiply(a, v);
    Matrix residual = av - v * r.value().values[static_cast<std::size_t>(i)];
    EXPECT_LT(residual.FrobeniusNorm(), 1e-7 * r.value().values[0])
        << "pair " << i;
  }
  // Orthonormal Ritz vectors.
  EXPECT_TRUE(AlmostEqual(MultiplyTN(r.value().vectors, r.value().vectors),
                          Matrix::Identity(k), 1e-8));
}

TEST(LanczosTest, AgreesWithSubspaceIteration) {
  // Spectrum with a deliberate gap after position k so the invariant
  // subspace is well conditioned for both solvers.
  std::vector<double> spectrum;
  for (int i = 0; i < 6; ++i) spectrum.push_back(50.0 - i);
  for (int i = 0; i < 114; ++i) spectrum.push_back(1.0 / (1 + i));
  Matrix a = SymmetricWithSpectrum(spectrum, 3);
  const Index k = 6;
  Result<LanczosResult> lz = LanczosTopEigenpairs(a, k);
  ASSERT_TRUE(lz.ok());
  Matrix sub = TopEigenvectorsSym(a, k);
  // Same invariant subspace: projector difference vanishes.
  Matrix p1 = MultiplyNT(lz.value().vectors, lz.value().vectors);
  Matrix p2 = MultiplyNT(sub, sub);
  EXPECT_LT((p1 - p2).MaxAbs(), 1e-6);
}

TEST(LanczosTest, HandlesLowRankMatrixEarlyBreakdown) {
  // Rank-2 PSD matrix: the Krylov space is exhausted after ~3 steps; the
  // solver must still return k = 2 valid pairs.
  Rng rng(4);
  Matrix b = Matrix::GaussianRandom(30, 2, rng);
  Matrix a = MultiplyNT(b, b);
  Result<LanczosResult> r = LanczosTopEigenpairs(a, 2);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r.value().values[0], 0);
  Matrix v = r.value().vectors.Col(0);
  Matrix residual = Multiply(a, v) - v * r.value().values[0];
  EXPECT_LT(residual.FrobeniusNorm(), 1e-8 * r.value().values[0]);
}

TEST(LanczosTest, IdentityMatrixDegenerateSpectrum) {
  Matrix a = Matrix::Identity(50);
  Result<LanczosResult> r = LanczosTopEigenpairs(a, 1);
  // Identity: Krylov space is 1-dimensional; k=1 must work.
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.value().values[0], 1.0, 1e-12);
}

TEST(LanczosTest, ConvergesWithFewMatvecsOnDecayingSpectrum) {
  std::vector<double> spectrum;
  for (int i = 0; i < 200; ++i) spectrum.push_back(std::pow(0.5, i) + 1e-9);
  Matrix a = SymmetricWithSpectrum(spectrum, 5);
  Result<LanczosResult> r = LanczosTopEigenpairs(a, 4);
  ASSERT_TRUE(r.ok());
  EXPECT_LT(r.value().matvecs, 60);
  EXPECT_NEAR(r.value().values[0], spectrum[0], 1e-8);
}

}  // namespace
}  // namespace dtucker
