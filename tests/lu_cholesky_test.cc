#include <gtest/gtest.h>

#include "common/rng.h"
#include "linalg/blas.h"
#include "linalg/cholesky.h"
#include "linalg/lu.h"

namespace dtucker {
namespace {

Matrix RandomSpd(Index n, uint64_t seed) {
  Rng rng(seed);
  Matrix a = Matrix::GaussianRandom(n, n, rng);
  Matrix spd = Gram(a);  // A^T A is PSD; add a ridge to make it PD.
  for (Index i = 0; i < n; ++i) spd(i, i) += 1.0;
  return spd;
}

TEST(CholeskyTest, FactorizationReconstructs) {
  Matrix a = RandomSpd(8, 1);
  Result<Matrix> l = Cholesky(a);
  ASSERT_TRUE(l.ok());
  EXPECT_TRUE(AlmostEqual(MultiplyNT(l.value(), l.value()), a, 1e-9));
  // Lower triangular.
  for (Index j = 0; j < 8; ++j) {
    for (Index i = 0; i < j; ++i) EXPECT_EQ(l.value()(i, j), 0.0);
  }
}

TEST(CholeskyTest, RejectsNonSpd) {
  Matrix a({{1, 0}, {0, -1}});
  Result<Matrix> l = Cholesky(a);
  EXPECT_FALSE(l.ok());
  EXPECT_EQ(l.status().code(), StatusCode::kNumericalError);
}

TEST(CholeskyTest, RejectsNonSquare) {
  EXPECT_FALSE(Cholesky(Matrix(2, 3)).ok());
}

TEST(CholeskyTest, SolveSpdRoundTrip) {
  Matrix a = RandomSpd(10, 2);
  Rng rng(3);
  Matrix x_true = Matrix::GaussianRandom(10, 3, rng);
  Matrix b = Multiply(a, x_true);
  Result<Matrix> x = SolveSpd(a, b);
  ASSERT_TRUE(x.ok());
  EXPECT_TRUE(AlmostEqual(x.value(), x_true, 1e-8));
}

TEST(LuTest, SolveRoundTrip) {
  Rng rng(4);
  Matrix a = Matrix::GaussianRandom(12, 12, rng);
  Matrix x_true = Matrix::GaussianRandom(12, 2, rng);
  Matrix b = Multiply(a, x_true);
  Result<Matrix> x = SolveLu(a, b);
  ASSERT_TRUE(x.ok());
  EXPECT_TRUE(AlmostEqual(x.value(), x_true, 1e-8));
}

TEST(LuTest, SolveNeedsPivoting) {
  // Zero on the leading diagonal forces a row swap.
  Matrix a({{0, 1}, {1, 0}});
  Matrix b({{2}, {3}});
  Result<Matrix> x = SolveLu(a, b);
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR(x.value()(0, 0), 3.0, 1e-14);
  EXPECT_NEAR(x.value()(1, 0), 2.0, 1e-14);
}

TEST(LuTest, SingularMatrixIsReported) {
  Matrix a({{1, 2}, {2, 4}});
  Result<Matrix> x = SolveLu(a, Matrix::Identity(2));
  EXPECT_FALSE(x.ok());
  EXPECT_EQ(x.status().code(), StatusCode::kNumericalError);
}

TEST(LuTest, InverseTimesOriginalIsIdentity) {
  Rng rng(5);
  Matrix a = Matrix::GaussianRandom(9, 9, rng);
  Result<Matrix> inv = Inverse(a);
  ASSERT_TRUE(inv.ok());
  EXPECT_TRUE(AlmostEqual(Multiply(a, inv.value()), Matrix::Identity(9),
                          1e-8));
}

TEST(LuTest, DeterminantKnownValues) {
  EXPECT_NEAR(Determinant(Matrix({{2, 0}, {0, 3}})).value(), 6.0, 1e-12);
  EXPECT_NEAR(Determinant(Matrix({{0, 1}, {1, 0}})).value(), -1.0, 1e-12);
  EXPECT_NEAR(Determinant(Matrix({{1, 2}, {2, 4}})).value(), 0.0, 1e-12);
}

TEST(LuTest, DeterminantMatchesProductOfEigenScale) {
  // det(cI) = c^n.
  Matrix a = Matrix::Identity(4) * 2.0;
  EXPECT_NEAR(Determinant(a).value(), 16.0, 1e-12);
}

}  // namespace
}  // namespace dtucker
