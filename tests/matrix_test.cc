#include "linalg/matrix.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace dtucker {
namespace {

TEST(MatrixTest, DefaultIsEmpty) {
  Matrix m;
  EXPECT_EQ(m.rows(), 0);
  EXPECT_EQ(m.cols(), 0);
  EXPECT_TRUE(m.empty());
}

TEST(MatrixTest, ZeroInitialized) {
  Matrix m(3, 4);
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 4);
  for (Index j = 0; j < 4; ++j) {
    for (Index i = 0; i < 3; ++i) EXPECT_EQ(m(i, j), 0.0);
  }
}

TEST(MatrixTest, InitializerListIsRowMajor) {
  Matrix m({{1, 2, 3}, {4, 5, 6}});
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_EQ(m(0, 0), 1);
  EXPECT_EQ(m(0, 2), 3);
  EXPECT_EQ(m(1, 0), 4);
  EXPECT_EQ(m(1, 2), 6);
}

TEST(MatrixTest, StorageIsColumnMajor) {
  Matrix m({{1, 2}, {3, 4}});
  // Column-major: data = [1, 3, 2, 4].
  EXPECT_EQ(m.data()[0], 1);
  EXPECT_EQ(m.data()[1], 3);
  EXPECT_EQ(m.data()[2], 2);
  EXPECT_EQ(m.data()[3], 4);
}

TEST(MatrixTest, Identity) {
  Matrix id = Matrix::Identity(3);
  for (Index i = 0; i < 3; ++i) {
    for (Index j = 0; j < 3; ++j) {
      EXPECT_EQ(id(i, j), i == j ? 1.0 : 0.0);
    }
  }
}

TEST(MatrixTest, Transposed) {
  Matrix m({{1, 2, 3}, {4, 5, 6}});
  Matrix t = m.Transposed();
  EXPECT_EQ(t.rows(), 3);
  EXPECT_EQ(t.cols(), 2);
  for (Index i = 0; i < 2; ++i) {
    for (Index j = 0; j < 3; ++j) EXPECT_EQ(m(i, j), t(j, i));
  }
}

TEST(MatrixTest, BlockAndSetBlock) {
  Matrix m({{1, 2, 3}, {4, 5, 6}, {7, 8, 9}});
  Matrix b = m.Block(1, 1, 2, 2);
  EXPECT_EQ(b(0, 0), 5);
  EXPECT_EQ(b(1, 1), 9);

  Matrix z = Matrix::Zero(2, 2);
  m.SetBlock(0, 0, z);
  EXPECT_EQ(m(0, 0), 0);
  EXPECT_EQ(m(1, 1), 0);
  EXPECT_EQ(m(2, 2), 9);
}

TEST(MatrixTest, Arithmetic) {
  Matrix a({{1, 2}, {3, 4}});
  Matrix b({{10, 20}, {30, 40}});
  Matrix c = a + b;
  EXPECT_EQ(c(1, 1), 44);
  Matrix d = b - a;
  EXPECT_EQ(d(0, 0), 9);
  Matrix e = a * 2.0;
  EXPECT_EQ(e(1, 0), 6);
}

TEST(MatrixTest, Norms) {
  Matrix m({{3, 0}, {0, 4}});
  EXPECT_DOUBLE_EQ(m.SquaredNorm(), 25.0);
  EXPECT_DOUBLE_EQ(m.FrobeniusNorm(), 5.0);
  EXPECT_DOUBLE_EQ(m.MaxAbs(), 4.0);
}

TEST(MatrixTest, GaussianRandomIsDeterministicInSeed) {
  Rng rng1(123), rng2(123);
  Matrix a = Matrix::GaussianRandom(5, 5, rng1);
  Matrix b = Matrix::GaussianRandom(5, 5, rng2);
  EXPECT_TRUE(AlmostEqual(a, b, 0.0));
}

TEST(MatrixTest, Diagonal) {
  Matrix d = Matrix::Diagonal({1, 2, 3});
  EXPECT_EQ(d(1, 1), 2);
  EXPECT_EQ(d(0, 1), 0);
}

TEST(MatrixTest, AlmostEqualRespectsTolerance) {
  Matrix a({{1.0}});
  Matrix b({{1.0 + 1e-12}});
  EXPECT_TRUE(AlmostEqual(a, b, 1e-10));
  EXPECT_FALSE(AlmostEqual(a, b, 1e-14));
  Matrix c(2, 1);
  EXPECT_FALSE(AlmostEqual(a, c, 1.0));  // Shape mismatch.
}

}  // namespace
}  // namespace dtucker
