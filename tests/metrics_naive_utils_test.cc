// Tests for tucker/metrics, tucker/naive_tucker, and tensor/tensor_utils.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "data/generators.h"
#include "dtucker/dtucker.h"
#include "linalg/blas.h"
#include "linalg/qr.h"
#include "tensor/tensor_utils.h"
#include "tucker/metrics.h"
#include "tucker/naive_tucker.h"
#include "tucker/tucker_als.h"

namespace dtucker {
namespace {

// --- metrics ---

TEST(MetricsTest, IdenticalSubspaces) {
  Rng rng(1);
  Matrix q = QrOrthonormalize(Matrix::GaussianRandom(20, 4, rng));
  EXPECT_NEAR(SubspaceDistance(q, q).value(), 0.0, 1e-6);
  EXPECT_NEAR(SubspaceSimilarity(q, q).value(), 1.0, 1e-9);
}

TEST(MetricsTest, RotatedBasisSameSubspace) {
  // Q and Q*R for orthogonal R span the same space.
  Rng rng(2);
  Matrix q = QrOrthonormalize(Matrix::GaussianRandom(20, 4, rng));
  Matrix rot = QrOrthonormalize(Matrix::GaussianRandom(4, 4, rng));
  Matrix q2 = Multiply(q, rot);
  EXPECT_NEAR(SubspaceDistance(q, q2).value(), 0.0, 1e-6);
}

TEST(MetricsTest, OrthogonalSubspacesMaxDistance) {
  Matrix u = Matrix::Zero(6, 2);
  u(0, 0) = 1;
  u(1, 1) = 1;
  Matrix v = Matrix::Zero(6, 2);
  v(2, 0) = 1;
  v(3, 1) = 1;
  EXPECT_NEAR(SubspaceDistance(u, v).value(), 1.0, 1e-12);
  EXPECT_NEAR(SubspaceSimilarity(u, v).value(), 0.0, 1e-12);
}

TEST(MetricsTest, KnownAngle) {
  // Plane rotated by 30 degrees in one direction.
  const double theta = M_PI / 6;
  Matrix u = Matrix::Zero(3, 1);
  u(0, 0) = 1;
  Matrix v = Matrix::Zero(3, 1);
  v(0, 0) = std::cos(theta);
  v(1, 0) = std::sin(theta);
  EXPECT_NEAR(SubspaceDistance(u, v).value(), std::sin(theta), 1e-12);
  EXPECT_NEAR(SubspaceSimilarity(u, v).value(), std::cos(theta), 1e-12);
}

TEST(MetricsTest, ValidatesShapes) {
  Matrix u(5, 2), v(6, 2);
  EXPECT_FALSE(SubspaceDistance(u, v).ok());
  EXPECT_FALSE(SubspaceSimilarity(Matrix(5, 0), Matrix(5, 0)).ok());
}

TEST(MetricsTest, FactorMatchScoreAcrossMethods) {
  // D-Tucker and Tucker-ALS should land in (nearly) the same factor
  // subspaces on well-conditioned data — the subspace-level version of
  // "comparable accuracy".
  Tensor x = MakeLowRankTensor({18, 16, 14}, {3, 3, 3}, 0.05, 3);
  TuckerAlsOptions aopt;
  aopt.ranks = {3, 3, 3};
  aopt.max_iterations = 15;
  Result<TuckerDecomposition> als = TuckerAls(x, aopt);
  ASSERT_TRUE(als.ok());

  DTuckerOptions dopt;
  dopt.tucker.ranks = {3, 3, 3};
  dopt.tucker.max_iterations = 15;
  Result<TuckerDecomposition> dt = DTucker(x, dopt);
  ASSERT_TRUE(dt.ok());

  Result<double> fms = FactorMatchScore(als.value(), dt.value());
  ASSERT_TRUE(fms.ok());
  EXPECT_GT(fms.value(), 0.99);
}

TEST(MetricsTest, CoreEnergyRatio) {
  Tensor x = MakeLowRankTensor({12, 10, 8}, {2, 2, 2}, 0.0, 4);
  TuckerAlsOptions opt;
  opt.ranks = {2, 2, 2};
  Result<TuckerDecomposition> dec = TuckerAls(x, opt);
  ASSERT_TRUE(dec.ok());
  EXPECT_NEAR(CoreEnergyRatio(dec.value(), x.SquaredNorm()), 1.0, 1e-10);
  EXPECT_EQ(CoreEnergyRatio(dec.value(), 0.0), 1.0);
}

// --- naive Kronecker ALS ---

TEST(NaiveTuckerTest, MatchesOptimizedAlsFixedPoint) {
  Tensor x = MakeLowRankTensor({10, 9, 8}, {3, 3, 3}, 0.2, 5);
  TuckerAlsOptions opt;
  opt.ranks = {3, 3, 3};
  opt.max_iterations = 10;
  Result<TuckerDecomposition> fast = TuckerAls(x, opt);
  std::size_t peak = 0;
  Result<TuckerDecomposition> naive =
      TuckerAlsNaiveKronecker(x, opt, nullptr, &peak);
  ASSERT_TRUE(fast.ok() && naive.ok());
  EXPECT_NEAR(fast.value().RelativeErrorAgainst(x),
              naive.value().RelativeErrorAgainst(x), 1e-8);
  // The naive route materialized a Kronecker operand larger than any
  // single intermediate of the TTM chain.
  EXPECT_GT(peak, x.ByteSize());
}

TEST(NaiveTuckerTest, IntermediateGrowsWithOtherModes) {
  TuckerAlsOptions opt;
  opt.ranks = {2, 2, 2};
  opt.max_iterations = 1;
  std::size_t peak_small = 0, peak_large = 0;
  Tensor small = MakeLowRankTensor({6, 6, 6}, {2, 2, 2}, 0.1, 6);
  Tensor large = MakeLowRankTensor({6, 12, 12}, {2, 2, 2}, 0.1, 6);
  ASSERT_TRUE(
      TuckerAlsNaiveKronecker(small, opt, nullptr, &peak_small).ok());
  ASSERT_TRUE(
      TuckerAlsNaiveKronecker(large, opt, nullptr, &peak_large).ok());
  EXPECT_GT(peak_large, peak_small);
}

// --- tensor utils ---

TEST(TensorUtilsTest, SubTensorMatchesManual) {
  Rng rng(7);
  Tensor x = Tensor::GaussianRandom({4, 6, 5}, rng);
  Result<Tensor> sub = SubTensor(x, 1, 2, 3);
  ASSERT_TRUE(sub.ok());
  EXPECT_EQ(sub.value().shape(), (std::vector<Index>{4, 3, 5}));
  for (Index k = 0; k < 5; ++k) {
    for (Index j = 0; j < 3; ++j) {
      for (Index i = 0; i < 4; ++i) {
        EXPECT_EQ(sub.value()(i, j, k), x(i, j + 2, k));
      }
    }
  }
}

TEST(TensorUtilsTest, SubTensorAgreesWithLastModeSlice) {
  Rng rng(8);
  Tensor x = Tensor::GaussianRandom({4, 5, 9}, rng);
  Result<Tensor> sub = SubTensor(x, 2, 3, 4);
  ASSERT_TRUE(sub.ok());
  EXPECT_TRUE(AlmostEqual(sub.value(), x.LastModeSlice(3, 4), 0.0));
}

TEST(TensorUtilsTest, SubTensorValidates) {
  Tensor x({4, 4, 4});
  EXPECT_FALSE(SubTensor(x, 3, 0, 1).ok());
  EXPECT_FALSE(SubTensor(x, 0, 3, 2).ok());
  EXPECT_FALSE(SubTensor(x, 0, -1, 1).ok());
}

TEST(TensorUtilsTest, ConcatenateInvertsSubTensor) {
  Rng rng(9);
  Tensor x = Tensor::GaussianRandom({3, 7, 4}, rng);
  for (Index mode = 0; mode < 3; ++mode) {
    const Index split = x.dim(mode) / 2;
    Tensor a = SubTensor(x, mode, 0, split).value();
    Tensor b = SubTensor(x, mode, split, x.dim(mode) - split).value();
    Result<Tensor> joined = Concatenate(a, b, mode);
    ASSERT_TRUE(joined.ok());
    EXPECT_TRUE(AlmostEqual(joined.value(), x, 0.0)) << "mode " << mode;
  }
}

TEST(TensorUtilsTest, ConcatenateValidates) {
  Tensor a({3, 4, 5});
  Tensor b({3, 5, 5});
  EXPECT_FALSE(Concatenate(a, b, 2).ok());  // Mode-1 dims differ.
  EXPECT_TRUE(Concatenate(a, b, 1).ok());
  Tensor c({3, 4});
  EXPECT_FALSE(Concatenate(a, c, 0).ok());  // Order mismatch.
}

TEST(TensorUtilsTest, HadamardAndMaxAbs) {
  Tensor a({2, 2, 1});
  a(0, 0, 0) = 2;
  a(1, 1, 0) = -3;
  Tensor b = a;
  Result<Tensor> h = HadamardProduct(a, b);
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h.value()(0, 0, 0), 4);
  EXPECT_EQ(h.value()(1, 1, 0), 9);
  EXPECT_EQ(MaxAbs(a), 3);
  EXPECT_FALSE(HadamardProduct(a, Tensor({2, 2, 2})).ok());
}

TEST(TensorUtilsTest, FiniteValidation) {
  Tensor x({2, 2, 2});
  EXPECT_FALSE(ContainsNonFinite(x));
  EXPECT_TRUE(ValidateFinite(x).ok());
  x(1, 1, 1) = std::nan("");
  EXPECT_TRUE(ContainsNonFinite(x));
  EXPECT_FALSE(ValidateFinite(x).ok());
  x(1, 1, 1) = std::numeric_limits<double>::infinity();
  EXPECT_TRUE(ContainsNonFinite(x));
}

TEST(TensorUtilsTest, SolversRejectNonFiniteWhenValidating) {
  Tensor x = MakeLowRankTensor({8, 8, 8}, {2, 2, 2}, 0.0, 10);
  x(0, 0, 0) = std::nan("");
  TuckerAlsOptions aopt;
  aopt.ranks = {2, 2, 2};
  aopt.validate_input = true;
  EXPECT_FALSE(TuckerAls(x, aopt).ok());

  DTuckerOptions dopt;
  dopt.tucker.ranks = {2, 2, 2};
  dopt.tucker.validate_input = true;
  EXPECT_FALSE(DTucker(x, dopt).ok());
  // Without validation the call proceeds (and propagates NaN).
  dopt.tucker.validate_input = false;
  EXPECT_TRUE(DTucker(x, dopt).ok());
}

}  // namespace
}  // namespace dtucker
