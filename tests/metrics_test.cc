// Tests for the counter/gauge registry, the thread-safe PhaseTimer, and
// the metrics JSON snapshot. The 8-thread monotonicity tests run under
// TSan via `ctest -L tsan` (see tests/CMakeLists.txt).
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/memory.h"
#include "common/metrics.h"
#include "common/timer.h"
#include "json_test_util.h"

namespace dtucker {
namespace {

TEST(CounterTest, AddAndValue) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Add(3);
  c.Add(4);
  EXPECT_EQ(c.Value(), 7u);
  c.Reset();
  EXPECT_EQ(c.Value(), 0u);
}

TEST(CounterTest, MonotonicUnderEightThreads) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kIncrements; ++i) c.Add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.Value(), static_cast<std::uint64_t>(kThreads) * kIncrements);
}

TEST(GaugeTest, SetAddSetMax) {
  Gauge g;
  g.Set(2.5);
  EXPECT_DOUBLE_EQ(g.Value(), 2.5);
  g.Add(1.5);
  EXPECT_DOUBLE_EQ(g.Value(), 4.0);
  g.SetMax(3.0);  // Below current: no change.
  EXPECT_DOUBLE_EQ(g.Value(), 4.0);
  g.SetMax(10.0);
  EXPECT_DOUBLE_EQ(g.Value(), 10.0);
  g.Reset();
  EXPECT_DOUBLE_EQ(g.Value(), 0.0);
}

TEST(GaugeTest, SetMaxUnderEightThreads) {
  Gauge g;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&g, t] {
      for (int i = 0; i < 5000; ++i) {
        g.SetMax(static_cast<double>(t * 10000 + i));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_DOUBLE_EQ(g.Value(), 7.0 * 10000 + 4999);
}

TEST(MetricsRegistryTest, SameNameSameCounter) {
  Counter& a = MetricCounter("test.same_name");
  Counter& b = MetricCounter("test.same_name");
  EXPECT_EQ(&a, &b);
  const std::uint64_t before = a.Value();
  b.Add(5);
  EXPECT_EQ(a.Value(), before + 5);
}

TEST(MetricsRegistryTest, ConcurrentRegistrationIsSafe) {
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::vector<Counter*> seen(kThreads, nullptr);
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&seen, t] {
      Counter& c = MetricCounter("test.concurrent_registration");
      c.Add(1);
      seen[static_cast<std::size_t>(t)] = &c;
    });
  }
  for (auto& t : threads) t.join();
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(seen[static_cast<std::size_t>(t)], seen[0]);
  }
  EXPECT_GE(MetricCounter("test.concurrent_registration").Value(),
            static_cast<std::uint64_t>(kThreads));
}

TEST(MetricsRegistryTest, SnapshotJsonIsValidAndContainsEntries) {
  MetricCounter("test.snapshot_counter").Add(11);
  MetricGauge("test.snapshot_gauge").Set(2.75);
  GlobalPhaseTimer().Add("test.snapshot_phase", 0.125);

  json_test::JsonValue root;
  const std::string text = MetricsRegistry::Global().SnapshotJson();
  ASSERT_TRUE(json_test::JsonParser::Parse(text, &root))
      << "snapshot must be valid JSON:\n" << text;
  ASSERT_TRUE(root.IsObject());
  ASSERT_TRUE(root.Has("counters"));
  ASSERT_TRUE(root.Has("gauges"));
  ASSERT_TRUE(root.Has("phases"));
  ASSERT_TRUE(root.Has("process"));

  EXPECT_GE(root.at("counters").at("test.snapshot_counter").number_value, 11);
  EXPECT_DOUBLE_EQ(root.at("gauges").at("test.snapshot_gauge").number_value,
                   2.75);
  EXPECT_GE(root.at("phases").at("test.snapshot_phase").number_value, 0.125);
  EXPECT_TRUE(root.at("process").Has("rss_bytes"));
  EXPECT_TRUE(root.at("process").Has("peak_rss_bytes"));
}

TEST(MemoryTest, PeakRssAtLeastCurrentRss) {
  const std::size_t current = CurrentRssBytes();
  const std::size_t peak = PeakRssBytes();
  // Both come from /proc on Linux; if available, peak >= current modulo
  // sampling skew of a page or two.
  if (current > 0 && peak > 0) {
    EXPECT_GE(peak + (1u << 20), current);
  }
}

TEST(PhaseTimerTest, ConcurrentAddsMerge) {
  PhaseTimer timer;
  constexpr int kThreads = 8;
  constexpr int kAdds = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&timer] {
      for (int i = 0; i < kAdds; ++i) timer.Add("shared.bucket", 0.001);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_NEAR(timer.Total("shared.bucket"), kThreads * kAdds * 0.001, 1e-6);
  EXPECT_NEAR(timer.GrandTotal(), kThreads * kAdds * 0.001, 1e-6);
  const auto totals = timer.totals();
  ASSERT_EQ(totals.size(), 1u);
  EXPECT_NEAR(totals.at("shared.bucket"), kThreads * kAdds * 0.001, 1e-6);
}

TEST(PhaseTimerTest, ScopedPhaseAccumulates) {
  PhaseTimer timer;
  {
    ScopedPhase phase(&timer, "scoped");
  }
  {
    ScopedPhase phase(&timer, "scoped");
  }
  EXPECT_GE(timer.Total("scoped"), 0.0);
  EXPECT_EQ(timer.totals().size(), 1u);
}

}  // namespace
}  // namespace dtucker
