// Tests for the counter/gauge registry, the thread-safe PhaseTimer, and
// the metrics JSON snapshot. The 8-thread monotonicity tests run under
// TSan via `ctest -L tsan` (see tests/CMakeLists.txt).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/memory.h"
#include "common/metrics.h"
#include "common/timer.h"
#include "json_test_util.h"

namespace dtucker {
namespace {

TEST(CounterTest, AddAndValue) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Add(3);
  c.Add(4);
  EXPECT_EQ(c.Value(), 7u);
  c.Reset();
  EXPECT_EQ(c.Value(), 0u);
}

TEST(CounterTest, MonotonicUnderEightThreads) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kIncrements; ++i) c.Add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.Value(), static_cast<std::uint64_t>(kThreads) * kIncrements);
}

TEST(GaugeTest, SetAddSetMax) {
  Gauge g;
  g.Set(2.5);
  EXPECT_DOUBLE_EQ(g.Value(), 2.5);
  g.Add(1.5);
  EXPECT_DOUBLE_EQ(g.Value(), 4.0);
  g.SetMax(3.0);  // Below current: no change.
  EXPECT_DOUBLE_EQ(g.Value(), 4.0);
  g.SetMax(10.0);
  EXPECT_DOUBLE_EQ(g.Value(), 10.0);
  g.Reset();
  EXPECT_DOUBLE_EQ(g.Value(), 0.0);
}

TEST(GaugeTest, SetMaxUnderEightThreads) {
  Gauge g;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&g, t] {
      for (int i = 0; i < 5000; ++i) {
        g.SetMax(static_cast<double>(t * 10000 + i));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_DOUBLE_EQ(g.Value(), 7.0 * 10000 + 4999);
}

TEST(MetricsRegistryTest, SameNameSameCounter) {
  Counter& a = MetricCounter("test.same_name");
  Counter& b = MetricCounter("test.same_name");
  EXPECT_EQ(&a, &b);
  const std::uint64_t before = a.Value();
  b.Add(5);
  EXPECT_EQ(a.Value(), before + 5);
}

TEST(MetricsRegistryTest, ConcurrentRegistrationIsSafe) {
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::vector<Counter*> seen(kThreads, nullptr);
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&seen, t] {
      Counter& c = MetricCounter("test.concurrent_registration");
      c.Add(1);
      seen[static_cast<std::size_t>(t)] = &c;
    });
  }
  for (auto& t : threads) t.join();
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(seen[static_cast<std::size_t>(t)], seen[0]);
  }
  EXPECT_GE(MetricCounter("test.concurrent_registration").Value(),
            static_cast<std::uint64_t>(kThreads));
}

TEST(MetricsRegistryTest, SnapshotJsonIsValidAndContainsEntries) {
  MetricCounter("test.snapshot_counter").Add(11);
  MetricGauge("test.snapshot_gauge").Set(2.75);
  GlobalPhaseTimer().Add("test.snapshot_phase", 0.125);

  json_test::JsonValue root;
  const std::string text = MetricsRegistry::Global().SnapshotJson();
  ASSERT_TRUE(json_test::JsonParser::Parse(text, &root))
      << "snapshot must be valid JSON:\n" << text;
  ASSERT_TRUE(root.IsObject());
  ASSERT_TRUE(root.Has("counters"));
  ASSERT_TRUE(root.Has("gauges"));
  ASSERT_TRUE(root.Has("phases"));
  ASSERT_TRUE(root.Has("process"));

  EXPECT_GE(root.at("counters").at("test.snapshot_counter").number_value, 11);
  EXPECT_DOUBLE_EQ(root.at("gauges").at("test.snapshot_gauge").number_value,
                   2.75);
  EXPECT_GE(root.at("phases").at("test.snapshot_phase").number_value, 0.125);
  EXPECT_TRUE(root.at("process").Has("rss_bytes"));
  EXPECT_TRUE(root.at("process").Has("peak_rss_bytes"));
}

TEST(HistogramTest, RecordCountSumMax) {
  Histogram h;
  EXPECT_EQ(h.Count(), 0u);
  h.Record(3);
  h.Record(100);
  h.Record(7);
  const HistogramData data = h.Snapshot();
  EXPECT_EQ(data.Count(), 3u);
  EXPECT_EQ(data.sum_ns, 110u);
  EXPECT_EQ(data.max_ns, 100u);
  h.Reset();
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.SumNs(), 0u);
}

TEST(HistogramTest, BucketIndexIsLogTwoWithClampedEnds) {
  // Bucket b covers [2^b, 2^(b+1)); bucket 0 absorbs 0/1 ns, the last is
  // open-ended.
  EXPECT_EQ(HistogramData::BucketIndex(0), 0u);
  EXPECT_EQ(HistogramData::BucketIndex(1), 0u);
  EXPECT_EQ(HistogramData::BucketIndex(2), 1u);
  EXPECT_EQ(HistogramData::BucketIndex(3), 1u);
  EXPECT_EQ(HistogramData::BucketIndex(4), 2u);
  EXPECT_EQ(HistogramData::BucketIndex((1ull << 20) - 1), 19u);
  EXPECT_EQ(HistogramData::BucketIndex(1ull << 20), 20u);
  EXPECT_EQ(HistogramData::BucketIndex(~0ull), HistogramData::kBuckets - 1);
  for (unsigned b = 0; b + 1 < HistogramData::kBuckets; ++b) {
    EXPECT_LT(HistogramData::BucketLowerNs(b),
              HistogramData::BucketLowerNs(b + 1));
  }
}

TEST(HistogramTest, QuantilesAreMonotoneAndClampedToMax) {
  Histogram h;
  for (std::uint64_t ns = 1; ns <= 1000; ++ns) h.Record(ns);
  const HistogramData data = h.Snapshot();
  const double p50 = data.QuantileNs(0.50);
  const double p90 = data.QuantileNs(0.90);
  const double p99 = data.QuantileNs(0.99);
  const double p100 = data.QuantileNs(1.0);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  EXPECT_LE(p99, p100);
  EXPECT_LE(p100, static_cast<double>(data.max_ns));
  // Log buckets give <= 2x relative error: the true p50 is 500.
  EXPECT_GE(p50, 250.0);
  EXPECT_LE(p50, 1000.0);
  EXPECT_LE(data.QuantileNs(0.0), p50);  // q = 0 targets the first sample.
  EXPECT_DOUBLE_EQ(HistogramData{}.QuantileNs(0.5), 0.0);
}

TEST(HistogramTest, ConcurrentRecordsMergeAcrossShards) {
  Histogram h;
  constexpr int kThreads = 8;
  constexpr int kRecords = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < kRecords; ++i) {
        h.Record(static_cast<std::uint64_t>(i) + 1);
      }
    });
  }
  for (auto& t : threads) t.join();
  const HistogramData data = h.Snapshot();
  EXPECT_EQ(data.Count(), static_cast<std::uint64_t>(kThreads) * kRecords);
  EXPECT_EQ(data.max_ns, static_cast<std::uint64_t>(kRecords));
  EXPECT_EQ(data.sum_ns, static_cast<std::uint64_t>(kThreads) * kRecords *
                             (kRecords + 1) / 2);
}

TEST(HistogramTest, MergeSumsBucketsAndKeepsMax) {
  Histogram a;
  Histogram b;
  a.Record(10);
  a.Record(20);
  b.Record(1000);
  HistogramData merged = a.Snapshot();
  merged.Merge(b.Snapshot());
  EXPECT_EQ(merged.Count(), 3u);
  EXPECT_EQ(merged.sum_ns, 1030u);
  EXPECT_EQ(merged.max_ns, 1000u);
}

TEST(MetricsRegistryTest, SnapshotJsonContainsHistogramSection) {
  Histogram& h = MetricHistogram("test.snapshot_histogram");
  h.Reset();
  for (int i = 0; i < 100; ++i) h.Record(1u << (i % 10));

  json_test::JsonValue root;
  const std::string text = MetricsRegistry::Global().SnapshotJson();
  ASSERT_TRUE(json_test::JsonParser::Parse(text, &root)) << text;
  ASSERT_TRUE(root.Has("histograms"));
  const auto& entry = root.at("histograms").at("test.snapshot_histogram");
  EXPECT_EQ(entry.at("count").number_value, 100.0);
  EXPECT_EQ(entry.at("max").number_value, 512.0);
  const double p50 = entry.at("p50").number_value;
  const double p90 = entry.at("p90").number_value;
  const double p99 = entry.at("p99").number_value;
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  EXPECT_LE(p99, entry.at("max").number_value);
  ASSERT_TRUE(entry.at("buckets").IsArray());
}

TEST(MetricsRegistryTest, MergeRankMetricsJsonBuildsSectionsAndRollups) {
  // Two synthetic rank dumps exercising every record type.
  MetricCounter("test.merge_counter").Add(5);
  MetricGauge("test.merge_gauge").Set(2.0);
  Histogram& h = MetricHistogram("test.merge_histogram");
  h.Reset();
  h.Record(100);
  h.Record(200);
  const std::string dump0 = MetricsRegistry::Global().SerializeForMerge();
  MetricCounter("test.merge_counter").Add(2);
  MetricGauge("test.merge_gauge").Set(6.0);
  h.Record(400);
  const std::string dump1 = MetricsRegistry::Global().SerializeForMerge();

  const std::string merged = MergeRankMetricsJson({dump0, dump1});
  json_test::JsonValue root;
  ASSERT_TRUE(json_test::JsonParser::Parse(merged, &root)) << merged;
  EXPECT_EQ(root.at("world_size").number_value, 2.0);
  ASSERT_TRUE(root.Has("ranks"));
  ASSERT_TRUE(root.at("ranks").Has("0"));
  ASSERT_TRUE(root.at("ranks").Has("1"));
  EXPECT_GE(root.at("ranks")
                .at("0")
                .at("counters")
                .at("test.merge_counter")
                .number_value,
            5.0);
  EXPECT_DOUBLE_EQ(
      root.at("ranks").at("1").at("gauges").at("test.merge_gauge").number_value,
      6.0);

  ASSERT_TRUE(root.Has("rollup"));
  const auto& gauge_rollup =
      root.at("rollup").at("gauges").at("test.merge_gauge");
  EXPECT_DOUBLE_EQ(gauge_rollup.at("min").number_value, 2.0);
  EXPECT_DOUBLE_EQ(gauge_rollup.at("max").number_value, 6.0);
  EXPECT_DOUBLE_EQ(gauge_rollup.at("sum").number_value, 8.0);
  // Histogram rollup merges raw buckets: 2 + 3 samples, max 400.
  const auto& hist_rollup =
      root.at("rollup").at("histograms").at("test.merge_histogram");
  EXPECT_EQ(hist_rollup.at("count").number_value, 5.0);
  EXPECT_EQ(hist_rollup.at("max").number_value, 400.0);
  EXPECT_LE(hist_rollup.at("p50").number_value,
            hist_rollup.at("p99").number_value);
}

TEST(MemoryTest, PeakRssAtLeastCurrentRss) {
  const std::size_t current = CurrentRssBytes();
  const std::size_t peak = PeakRssBytes();
  // Both come from /proc on Linux; if available, peak >= current modulo
  // sampling skew of a page or two.
  if (current > 0 && peak > 0) {
    EXPECT_GE(peak + (1u << 20), current);
  }
}

TEST(PhaseTimerTest, ConcurrentAddsMerge) {
  PhaseTimer timer;
  constexpr int kThreads = 8;
  constexpr int kAdds = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&timer] {
      for (int i = 0; i < kAdds; ++i) timer.Add("shared.bucket", 0.001);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_NEAR(timer.Total("shared.bucket"), kThreads * kAdds * 0.001, 1e-6);
  EXPECT_NEAR(timer.GrandTotal(), kThreads * kAdds * 0.001, 1e-6);
  const auto totals = timer.totals();
  ASSERT_EQ(totals.size(), 1u);
  EXPECT_NEAR(totals.at("shared.bucket"), kThreads * kAdds * 0.001, 1e-6);
}

TEST(PhaseTimerTest, ScopedPhaseAccumulates) {
  PhaseTimer timer;
  {
    ScopedPhase phase(&timer, "scoped");
  }
  {
    ScopedPhase phase(&timer, "scoped");
  }
  EXPECT_GE(timer.Total("scoped"), 0.0);
  EXPECT_EQ(timer.totals().size(), 1u);
}

}  // namespace
}  // namespace dtucker
