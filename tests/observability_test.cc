// End-to-end observability checks, run under `ctest -L observability`:
// a small decomposition traced in-process must yield a Chrome-trace JSON
// with nested spans for all three D-Tucker phases and a metrics snapshot
// with FLOP/call counters and per-sweep fit gauges; the dtucker_cli
// subprocess must produce the same artifacts via --trace-out/--metrics-out.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "common/telemetry.h"
#include "common/trace.h"
#include "data/generators.h"
#include "data/tensor_io.h"
#include "dtucker/dtucker.h"
#include "dtucker/sharded_dtucker.h"
#include "json_test_util.h"

namespace dtucker {
namespace {

using json_test::JsonParser;
using json_test::JsonValue;

// The X (complete) events of a parsed Chrome trace, keyed by name.
struct TraceIndex {
  std::set<std::string> names;
  // [start_us, end_us] per name occurrence.
  std::vector<std::pair<std::string, std::pair<double, double>>> intervals;
};

TraceIndex IndexTrace(const JsonValue& root) {
  TraceIndex index;
  const JsonValue& events = root.at("traceEvents");
  for (const JsonValue& ev : events.array) {
    if (!ev.Has("ph") || ev.at("ph").string_value != "X") continue;
    const std::string& name = ev.at("name").string_value;
    const double ts = ev.at("ts").number_value;
    const double dur = ev.at("dur").number_value;
    index.names.insert(name);
    index.intervals.emplace_back(name, std::make_pair(ts, ts + dur));
  }
  return index;
}

Result<TuckerDecomposition> RunSmallDecomposition(TuckerStats* stats) {
  Tensor x = MakeLowRankTensor({14, 12, 10}, {3, 3, 3}, 0.1, 7);
  DTuckerOptions opt;
  opt.tucker.ranks = {3, 3, 3};
  opt.tucker.max_iterations = 4;
  opt.tucker.tolerance = 0.0;  // Run every sweep so telemetry is deterministic.
  return DTucker(x, opt, stats);
}

TEST(ObservabilityTest, TraceShowsNestedSpansForAllThreePhases) {
  SetTraceEnabled(false);
  ClearTrace();
  SetTraceEnabled(true);
  TuckerStats stats;
  Result<TuckerDecomposition> dec = RunSmallDecomposition(&stats);
  SetTraceEnabled(false);
  ASSERT_TRUE(dec.ok()) << dec.status().ToString();

  std::ostringstream os;
  ExportChromeTrace(os);
  JsonValue root;
  ASSERT_TRUE(JsonParser::Parse(os.str(), &root));
  ASSERT_TRUE(root.Has("traceEvents"));
  const TraceIndex index = IndexTrace(root);

  // All three D-Tucker phases, the per-sweep spans, and the substrate
  // kernels underneath them.
  for (const char* phase :
       {"dtucker.approximation", "dtucker.initialization",
        "dtucker.iteration", "dtucker.sweep", "dtucker.slice_svd",
        "qr.thin", "rsvd"}) {
    EXPECT_TRUE(index.names.count(phase)) << "missing span: " << phase;
  }

  // One sweep span per recorded sweep, each nested inside the iteration
  // phase's interval.
  std::pair<double, double> iteration{0, 0};
  for (const auto& [name, interval] : index.intervals) {
    if (name == "dtucker.iteration") iteration = interval;
  }
  int sweeps = 0;
  for (const auto& [name, interval] : index.intervals) {
    if (name != "dtucker.sweep") continue;
    ++sweeps;
    EXPECT_GE(interval.first, iteration.first);
    EXPECT_LE(interval.second, iteration.second + 1e-3);
  }
  EXPECT_EQ(sweeps, stats.iterations);
  ClearTrace();
}

TEST(ObservabilityTest, MetricsSnapshotReportsFlopsAndPerSweepFit) {
  TuckerStats stats;
  Result<TuckerDecomposition> dec = RunSmallDecomposition(&stats);
  ASSERT_TRUE(dec.ok()) << dec.status().ToString();
  RecordSweepMetrics(stats);
  ASSERT_FALSE(stats.sweep_history.empty());

  JsonValue root;
  ASSERT_TRUE(
      JsonParser::Parse(MetricsRegistry::Global().SnapshotJson(), &root));
  const JsonValue& counters = root.at("counters");
  EXPECT_GE(counters.at("gemm.calls").number_value, 1.0);
  EXPECT_GE(counters.at("gemm.flops").number_value, 1.0);
  EXPECT_GE(counters.at("qr.calls").number_value, 1.0);
  EXPECT_GE(counters.at("rsvd.calls").number_value, 1.0);

  const JsonValue& gauges = root.at("gauges");
  EXPECT_TRUE(gauges.Has("dtucker.sweep01.fit"));
  EXPECT_TRUE(gauges.Has("dtucker.sweep01.delta_fit"));
  EXPECT_TRUE(gauges.Has("dtucker.sweep01.subspace_iterations"));
  EXPECT_NEAR(gauges.at("dtucker.sweep01.fit").number_value,
              stats.sweep_history[0].fit, 1e-12);
  EXPECT_GT(gauges.at("process.peak_rss_bytes").number_value, 0.0);

  EXPECT_TRUE(root.at("phases").Has("dtucker.iteration"));
  EXPECT_GT(root.at("process").at("peak_rss_bytes").number_value, 0.0);
}

// Schema checks for a merged multi-rank Chrome trace: one pid lane per
// rank, clock-aligned collective spans, and every flow hop bound to an
// existing span on its own (pid, tid) lane.
void CheckMergedTraceDocument(const JsonValue& root, int world_size) {
  ASSERT_TRUE(root.Has("traceEvents"));
  std::set<int> lane_pids;
  std::map<std::pair<int, int>, std::vector<std::pair<double, double>>> spans;
  struct Flow {
    int pid;
    int tid;
    double ts;
  };
  std::vector<Flow> flows;
  std::set<std::string> flow_phases;
  for (const JsonValue& ev : root.at("traceEvents").array) {
    const std::string& ph = ev.at("ph").string_value;
    if (ph == "M") {
      if (ev.at("name").string_value == "process_name") {
        lane_pids.insert(static_cast<int>(ev.at("pid").number_value));
      }
      continue;
    }
    const int pid = static_cast<int>(ev.at("pid").number_value);
    const int tid = static_cast<int>(ev.at("tid").number_value);
    const double ts = ev.at("ts").number_value;
    if (ph == "X") {
      spans[{pid, tid}].emplace_back(ts, ts + ev.at("dur").number_value);
    } else if (ph == "s" || ph == "t" || ph == "f") {
      EXPECT_TRUE(ev.Has("id"));
      flows.push_back(Flow{pid, tid, ts});
      flow_phases.insert(ph);
    }
  }
  for (int r = 0; r < world_size; ++r) {
    EXPECT_TRUE(lane_pids.count(r)) << "missing pid lane for rank " << r;
  }
  ASSERT_FALSE(flows.empty()) << "collectives must emit flow events";
  // Start on rank 0, finish on the last rank; middles only when size > 2.
  EXPECT_TRUE(flow_phases.count("s"));
  EXPECT_TRUE(flow_phases.count("f"));
  if (world_size > 2) {
    EXPECT_TRUE(flow_phases.count("t"));
  }
  for (const Flow& f : flows) {
    bool bound = false;
    const auto it = spans.find({f.pid, f.tid});
    if (it != spans.end()) {
      for (const auto& [start, end] : it->second) {
        bound = bound || (f.ts >= start - 1e-3 && f.ts <= end + 1e-3);
      }
    }
    EXPECT_TRUE(bound) << "flow hop at ts=" << f.ts << " on pid " << f.pid
                       << " tid " << f.tid
                       << " references no span on that lane";
  }
}

// Schema checks for the merged metrics document: every rank section
// present, per-op comm-wait histograms with monotone quantiles, and
// cross-rank rollups over the same names.
void CheckMergedMetricsDocument(const JsonValue& root, int world_size) {
  EXPECT_EQ(root.at("world_size").number_value,
            static_cast<double>(world_size));
  ASSERT_TRUE(root.Has("ranks"));
  auto check_histograms = [](const JsonValue& hists, int* comm_wait_ops) {
    for (const auto& [name, h] : hists.object) {
      const double p50 = h.at("p50").number_value;
      const double p90 = h.at("p90").number_value;
      const double p99 = h.at("p99").number_value;
      const double max = h.at("max").number_value;
      EXPECT_LE(p50, p90) << name;
      EXPECT_LE(p90, p99) << name;
      EXPECT_LE(p99, max) << name;
      if (name.rfind("comm.wait_ns.", 0) == 0 && h.at("count").number_value > 0)
        ++*comm_wait_ops;
    }
  };
  for (int r = 0; r < world_size; ++r) {
    ASSERT_TRUE(root.at("ranks").Has(std::to_string(r)))
        << "missing rank section " << r;
    const JsonValue& rank = root.at("ranks").at(std::to_string(r));
    for (const char* section :
         {"counters", "gauges", "histograms", "phases", "process"}) {
      EXPECT_TRUE(rank.Has(section))
          << "rank " << r << " missing section " << section;
    }
    int comm_wait_ops = 0;
    check_histograms(rank.at("histograms"), &comm_wait_ops);
    EXPECT_GE(comm_wait_ops, 2)
        << "rank " << r << " must report per-op comm-wait quantiles";
  }
  ASSERT_TRUE(root.Has("rollup"));
  for (const char* section : {"counters", "gauges", "phases", "histograms"}) {
    EXPECT_TRUE(root.at("rollup").Has(section));
  }
  int rollup_comm_wait_ops = 0;
  check_histograms(root.at("rollup").at("histograms"), &rollup_comm_wait_ops);
  EXPECT_GE(rollup_comm_wait_ops, 2);
}

TEST(ObservabilityGatherTest, InProcessFourRankRunDepositsMergedTelemetry) {
  SetTraceEnabled(false);
  ClearTrace();
  SetTraceRunId(4242);
  SetTelemetryGatherEnabled(true);
  SetTraceEnabled(true);

  Tensor x = MakeLowRankTensor({14, 12, 12}, {3, 3, 3}, 0.1, 7);
  ShardedDTuckerOptions opt;
  opt.dtucker.tucker.ranks = {3, 3, 3};
  opt.dtucker.tucker.max_iterations = 3;
  opt.dtucker.tucker.tolerance = 0.0;
  opt.num_ranks = 4;
  Result<TuckerDecomposition> dec = ShardedDTucker(x, opt);

  SetTraceEnabled(false);
  SetTelemetryGatherEnabled(false);
  ASSERT_TRUE(dec.ok()) << dec.status().ToString();

  const AggregatedTelemetry& agg = GetAggregatedTelemetry();
  ASSERT_TRUE(agg.present) << "the run-end gather must deposit a bundle";
  ASSERT_TRUE(agg.is_root);
  EXPECT_EQ(agg.run_id, 4242u);

  JsonValue trace;
  ASSERT_TRUE(JsonParser::Parse(agg.merged_trace_json, &trace))
      << agg.merged_trace_json.substr(0, 2000);
  EXPECT_EQ(trace.at("otherData").at("run_id").string_value, "4242");
  EXPECT_EQ(trace.at("otherData").at("world_size").number_value, 4.0);
  CheckMergedTraceDocument(trace, 4);

  JsonValue metrics;
  ASSERT_TRUE(JsonParser::Parse(agg.merged_metrics_json, &metrics))
      << agg.merged_metrics_json.substr(0, 2000);
  CheckMergedMetricsDocument(metrics, 4);

  SetTraceRunId(0);
  ClearTrace();
}

#ifdef DTUCKER_CLI_PATH

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

TEST(ObservabilityCliTest, TraceOutAndMetricsOutWriteValidJson) {
  const std::string dir = ::testing::TempDir();
  const std::string tensor_path = dir + "obs_cli_tensor.dtnsr";
  const std::string trace_path = dir + "obs_cli_trace.json";
  const std::string metrics_path = dir + "obs_cli_metrics.json";

  Tensor x = MakeLowRankTensor({14, 12, 10}, {3, 3, 3}, 0.1, 7);
  ASSERT_TRUE(SaveTensor(x, tensor_path).ok());

  const std::string cmd = std::string(DTUCKER_CLI_PATH) +
                          " --op=decompose --tensor=" + tensor_path +
                          " --method=D-Tucker --rank=3 --iters=4" +
                          " --trace-out=" + trace_path +
                          " --metrics-out=" + metrics_path +
                          " > /dev/null";
  const int rc = std::system(cmd.c_str());
  ASSERT_EQ(rc, 0) << "command failed: " << cmd;

  // The trace file is a Perfetto-loadable Chrome trace with spans for all
  // three phases recorded by the subprocess.
  JsonValue trace;
  ASSERT_TRUE(JsonParser::Parse(ReadFileOrDie(trace_path), &trace));
  ASSERT_TRUE(trace.Has("traceEvents"));
  const TraceIndex index = IndexTrace(trace);
  for (const char* phase :
       {"method.run", "dtucker.approximation", "dtucker.initialization",
        "dtucker.iteration", "dtucker.sweep"}) {
    EXPECT_TRUE(index.names.count(phase)) << "missing span: " << phase;
  }

  // The metrics file has all four sections with the headline entries.
  JsonValue metrics;
  ASSERT_TRUE(JsonParser::Parse(ReadFileOrDie(metrics_path), &metrics));
  for (const char* section : {"counters", "gauges", "phases", "process"}) {
    EXPECT_TRUE(metrics.Has(section)) << "missing section: " << section;
  }
  EXPECT_GE(metrics.at("counters").at("gemm.flops").number_value, 1.0);
  EXPECT_TRUE(metrics.at("gauges").Has("dtucker.sweep01.fit"));
  EXPECT_TRUE(metrics.at("phases").Has("method.D-Tucker"));
  EXPECT_GT(metrics.at("process").at("peak_rss_bytes").number_value, 0.0);

  std::remove(tensor_path.c_str());
  std::remove(trace_path.c_str());
  std::remove(metrics_path.c_str());
}

bool FileExists(const std::string& path) {
  std::ifstream in(path);
  return in.good();
}

// Runs the CLI over 4 ranks on the given transport (threads or fork()ed
// processes) and schema-checks the single merged trace + metrics documents
// rank 0 writes.
void RunFourRankCliCase(const std::string& tag, const std::string& transport,
                        const std::string& extra_args) {
  const std::string dir = ::testing::TempDir();
  const std::string tensor_path = dir + "obs_cli4_" + tag + ".dtnsr";
  const std::string trace_path = dir + "obs_cli4_" + tag + "_trace.json";
  const std::string metrics_path = dir + "obs_cli4_" + tag + "_metrics.json";

  Tensor x = MakeLowRankTensor({14, 12, 12}, {3, 3, 3}, 0.1, 7);
  ASSERT_TRUE(SaveTensor(x, tensor_path).ok());

  const std::string cmd = std::string(DTUCKER_CLI_PATH) +
                          " --op=decompose --tensor=" + tensor_path +
                          " --method=D-Tucker --rank=3 --iters=3" +
                          " --ranks=4 --transport=" + transport + " " +
                          extra_args + " --trace-out=" + trace_path +
                          " --metrics-out=" + metrics_path + " > /dev/null";
  const int rc = std::system(cmd.c_str());
  ASSERT_EQ(rc, 0) << "command failed: " << cmd;

  // One merged file each; the aggregation must suppress per-rank fallback
  // files ("<path>.rank<r>").
  for (int r = 1; r < 4; ++r) {
    EXPECT_FALSE(FileExists(trace_path + ".rank" + std::to_string(r)))
        << "rank " << r << " wrote a fallback trace despite the gather";
    EXPECT_FALSE(FileExists(metrics_path + ".rank" + std::to_string(r)));
  }

  JsonValue trace;
  ASSERT_TRUE(JsonParser::Parse(ReadFileOrDie(trace_path), &trace));
  EXPECT_EQ(trace.at("otherData").at("world_size").number_value, 4.0);
  CheckMergedTraceDocument(trace, 4);

  JsonValue metrics;
  ASSERT_TRUE(JsonParser::Parse(ReadFileOrDie(metrics_path), &metrics));
  CheckMergedMetricsDocument(metrics, 4);

  std::remove(tensor_path.c_str());
  std::remove(trace_path.c_str());
  std::remove(metrics_path.c_str());
}

TEST(ObservabilityCliTest, FourRankShmThreadsProduceMergedDocuments) {
  RunFourRankCliCase("threads", "shm", "");
}

TEST(ObservabilityCliTest, FourRankShmForkedProcessesProduceMergedDocuments) {
  RunFourRankCliCase("procs", "shm", "--rank-procs");
}

TEST(ObservabilityCliTest, FourRankFileForkedProcessesProduceMergedDocuments) {
  RunFourRankCliCase("file_procs", "file", "--rank-procs");
}

#endif  // DTUCKER_CLI_PATH

}  // namespace
}  // namespace dtucker
