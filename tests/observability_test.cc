// End-to-end observability checks, run under `ctest -L observability`:
// a small decomposition traced in-process must yield a Chrome-trace JSON
// with nested spans for all three D-Tucker phases and a metrics snapshot
// with FLOP/call counters and per-sweep fit gauges; the dtucker_cli
// subprocess must produce the same artifacts via --trace-out/--metrics-out.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/trace.h"
#include "data/generators.h"
#include "data/tensor_io.h"
#include "dtucker/dtucker.h"
#include "json_test_util.h"

namespace dtucker {
namespace {

using json_test::JsonParser;
using json_test::JsonValue;

// The X (complete) events of a parsed Chrome trace, keyed by name.
struct TraceIndex {
  std::set<std::string> names;
  // [start_us, end_us] per name occurrence.
  std::vector<std::pair<std::string, std::pair<double, double>>> intervals;
};

TraceIndex IndexTrace(const JsonValue& root) {
  TraceIndex index;
  const JsonValue& events = root.at("traceEvents");
  for (const JsonValue& ev : events.array) {
    if (!ev.Has("ph") || ev.at("ph").string_value != "X") continue;
    const std::string& name = ev.at("name").string_value;
    const double ts = ev.at("ts").number_value;
    const double dur = ev.at("dur").number_value;
    index.names.insert(name);
    index.intervals.emplace_back(name, std::make_pair(ts, ts + dur));
  }
  return index;
}

Result<TuckerDecomposition> RunSmallDecomposition(TuckerStats* stats) {
  Tensor x = MakeLowRankTensor({14, 12, 10}, {3, 3, 3}, 0.1, 7);
  DTuckerOptions opt;
  opt.tucker.ranks = {3, 3, 3};
  opt.tucker.max_iterations = 4;
  opt.tucker.tolerance = 0.0;  // Run every sweep so telemetry is deterministic.
  return DTucker(x, opt, stats);
}

TEST(ObservabilityTest, TraceShowsNestedSpansForAllThreePhases) {
  SetTraceEnabled(false);
  ClearTrace();
  SetTraceEnabled(true);
  TuckerStats stats;
  Result<TuckerDecomposition> dec = RunSmallDecomposition(&stats);
  SetTraceEnabled(false);
  ASSERT_TRUE(dec.ok()) << dec.status().ToString();

  std::ostringstream os;
  ExportChromeTrace(os);
  JsonValue root;
  ASSERT_TRUE(JsonParser::Parse(os.str(), &root));
  ASSERT_TRUE(root.Has("traceEvents"));
  const TraceIndex index = IndexTrace(root);

  // All three D-Tucker phases, the per-sweep spans, and the substrate
  // kernels underneath them.
  for (const char* phase :
       {"dtucker.approximation", "dtucker.initialization",
        "dtucker.iteration", "dtucker.sweep", "dtucker.slice_svd",
        "qr.thin", "rsvd"}) {
    EXPECT_TRUE(index.names.count(phase)) << "missing span: " << phase;
  }

  // One sweep span per recorded sweep, each nested inside the iteration
  // phase's interval.
  std::pair<double, double> iteration{0, 0};
  for (const auto& [name, interval] : index.intervals) {
    if (name == "dtucker.iteration") iteration = interval;
  }
  int sweeps = 0;
  for (const auto& [name, interval] : index.intervals) {
    if (name != "dtucker.sweep") continue;
    ++sweeps;
    EXPECT_GE(interval.first, iteration.first);
    EXPECT_LE(interval.second, iteration.second + 1e-3);
  }
  EXPECT_EQ(sweeps, stats.iterations);
  ClearTrace();
}

TEST(ObservabilityTest, MetricsSnapshotReportsFlopsAndPerSweepFit) {
  TuckerStats stats;
  Result<TuckerDecomposition> dec = RunSmallDecomposition(&stats);
  ASSERT_TRUE(dec.ok()) << dec.status().ToString();
  RecordSweepMetrics(stats);
  ASSERT_FALSE(stats.sweep_history.empty());

  JsonValue root;
  ASSERT_TRUE(
      JsonParser::Parse(MetricsRegistry::Global().SnapshotJson(), &root));
  const JsonValue& counters = root.at("counters");
  EXPECT_GE(counters.at("gemm.calls").number_value, 1.0);
  EXPECT_GE(counters.at("gemm.flops").number_value, 1.0);
  EXPECT_GE(counters.at("qr.calls").number_value, 1.0);
  EXPECT_GE(counters.at("rsvd.calls").number_value, 1.0);

  const JsonValue& gauges = root.at("gauges");
  EXPECT_TRUE(gauges.Has("dtucker.sweep01.fit"));
  EXPECT_TRUE(gauges.Has("dtucker.sweep01.delta_fit"));
  EXPECT_TRUE(gauges.Has("dtucker.sweep01.subspace_iterations"));
  EXPECT_NEAR(gauges.at("dtucker.sweep01.fit").number_value,
              stats.sweep_history[0].fit, 1e-12);
  EXPECT_GT(gauges.at("process.peak_rss_bytes").number_value, 0.0);

  EXPECT_TRUE(root.at("phases").Has("dtucker.iteration"));
  EXPECT_GT(root.at("process").at("peak_rss_bytes").number_value, 0.0);
}

#ifdef DTUCKER_CLI_PATH

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

TEST(ObservabilityCliTest, TraceOutAndMetricsOutWriteValidJson) {
  const std::string dir = ::testing::TempDir();
  const std::string tensor_path = dir + "obs_cli_tensor.dtnsr";
  const std::string trace_path = dir + "obs_cli_trace.json";
  const std::string metrics_path = dir + "obs_cli_metrics.json";

  Tensor x = MakeLowRankTensor({14, 12, 10}, {3, 3, 3}, 0.1, 7);
  ASSERT_TRUE(SaveTensor(x, tensor_path).ok());

  const std::string cmd = std::string(DTUCKER_CLI_PATH) +
                          " --op=decompose --tensor=" + tensor_path +
                          " --method=D-Tucker --rank=3 --iters=4" +
                          " --trace-out=" + trace_path +
                          " --metrics-out=" + metrics_path +
                          " > /dev/null";
  const int rc = std::system(cmd.c_str());
  ASSERT_EQ(rc, 0) << "command failed: " << cmd;

  // The trace file is a Perfetto-loadable Chrome trace with spans for all
  // three phases recorded by the subprocess.
  JsonValue trace;
  ASSERT_TRUE(JsonParser::Parse(ReadFileOrDie(trace_path), &trace));
  ASSERT_TRUE(trace.Has("traceEvents"));
  const TraceIndex index = IndexTrace(trace);
  for (const char* phase :
       {"method.run", "dtucker.approximation", "dtucker.initialization",
        "dtucker.iteration", "dtucker.sweep"}) {
    EXPECT_TRUE(index.names.count(phase)) << "missing span: " << phase;
  }

  // The metrics file has all four sections with the headline entries.
  JsonValue metrics;
  ASSERT_TRUE(JsonParser::Parse(ReadFileOrDie(metrics_path), &metrics));
  for (const char* section : {"counters", "gauges", "phases", "process"}) {
    EXPECT_TRUE(metrics.Has(section)) << "missing section: " << section;
  }
  EXPECT_GE(metrics.at("counters").at("gemm.flops").number_value, 1.0);
  EXPECT_TRUE(metrics.at("gauges").Has("dtucker.sweep01.fit"));
  EXPECT_TRUE(metrics.at("phases").Has("method.D-Tucker"));
  EXPECT_GT(metrics.at("process").at("peak_rss_bytes").number_value, 0.0);

  std::remove(tensor_path.c_str());
  std::remove(trace_path.c_str());
  std::remove(metrics_path.c_str());
}

#endif  // DTUCKER_CLI_PATH

}  // namespace
}  // namespace dtucker
