#include "dtucker/online_dtucker.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/generators.h"

namespace dtucker {
namespace {

OnlineDTuckerOptions MakeOptions(std::vector<Index> ranks) {
  OnlineDTuckerOptions opt;
  opt.dtucker.tucker.ranks = std::move(ranks);
  opt.dtucker.tucker.max_iterations = 10;
  opt.refit_sweeps = 3;
  return opt;
}

TEST(OnlineDTuckerTest, RequiresInitializeFirst) {
  OnlineDTucker online(MakeOptions({2, 2, 2}));
  Rng rng(1);
  Tensor chunk = Tensor::GaussianRandom({4, 4, 2}, rng);
  EXPECT_EQ(online.Append(chunk).code(), StatusCode::kFailedPrecondition);
}

TEST(OnlineDTuckerTest, InitializeValidates) {
  OnlineDTucker online(MakeOptions({2, 2}));
  Rng rng(2);
  Tensor x = Tensor::GaussianRandom({4, 4}, rng);
  EXPECT_FALSE(online.Initialize(x).ok());

  OnlineDTucker online3(MakeOptions({9, 2, 2}));
  Tensor y = Tensor::GaussianRandom({4, 4, 4}, rng);
  EXPECT_FALSE(online3.Initialize(y).ok());
}

TEST(OnlineDTuckerTest, DoubleInitializeRejected) {
  OnlineDTucker online(MakeOptions({2, 2, 2}));
  Tensor x = MakeLowRankTensor({8, 8, 6}, {2, 2, 2}, 0.0, 3);
  ASSERT_TRUE(online.Initialize(x).ok());
  EXPECT_EQ(online.Initialize(x).code(), StatusCode::kFailedPrecondition);
}

TEST(OnlineDTuckerTest, AppendShapeChecked) {
  OnlineDTucker online(MakeOptions({2, 2, 2}));
  Tensor x = MakeLowRankTensor({8, 8, 6}, {2, 2, 2}, 0.0, 4);
  ASSERT_TRUE(online.Initialize(x).ok());
  Rng rng(5);
  Tensor bad = Tensor::GaussianRandom({8, 7, 2}, rng);
  EXPECT_FALSE(online.Append(bad).ok());
  Tensor bad_order = Tensor::GaussianRandom({8, 8, 2, 2}, rng);
  EXPECT_FALSE(online.Append(bad_order).ok());
}

TEST(OnlineDTuckerTest, AppendGrowsShapeAndTracksData) {
  Tensor full = MakeLowRankTensor({12, 10, 16}, {3, 3, 3}, 0.1, 6);
  OnlineDTucker online(MakeOptions({3, 3, 3}));
  ASSERT_TRUE(online.Initialize(full.LastModeSlice(0, 8)).ok());
  EXPECT_EQ(online.shape()[2], 8);
  ASSERT_TRUE(online.Append(full.LastModeSlice(8, 4)).ok());
  EXPECT_EQ(online.shape()[2], 12);
  ASSERT_TRUE(online.Append(full.LastModeSlice(12, 4)).ok());
  EXPECT_EQ(online.shape()[2], 16);
  EXPECT_EQ(online.approximation().NumSlices(), 16);

  // Final decomposition approximates the full tensor well.
  EXPECT_LT(online.decomposition().RelativeErrorAgainst(full), 0.05);
}

TEST(OnlineDTuckerTest, MatchesBatchQuality) {
  Tensor full = MakeLowRankTensor({14, 12, 20}, {3, 3, 3}, 0.2, 7);
  OnlineDTucker online(MakeOptions({3, 3, 3}));
  ASSERT_TRUE(online.Initialize(full.LastModeSlice(0, 10)).ok());
  ASSERT_TRUE(online.Append(full.LastModeSlice(10, 10)).ok());

  DTuckerOptions batch_opt;
  batch_opt.tucker.ranks = {3, 3, 3};
  batch_opt.tucker.max_iterations = 10;
  Result<TuckerDecomposition> batch = DTucker(full, batch_opt);
  ASSERT_TRUE(batch.ok());

  const double online_err = online.decomposition().RelativeErrorAgainst(full);
  const double batch_err = batch.value().RelativeErrorAgainst(full);
  EXPECT_LT(online_err, batch_err + 0.02)
      << "online " << online_err << " vs batch " << batch_err;
}

TEST(OnlineDTuckerTest, AppendOnlyCompressesNewSlices) {
  Tensor full = MakeLowRankTensor({30, 26, 24}, {3, 3, 3}, 0.1, 8);
  OnlineDTucker online(MakeOptions({3, 3, 3}));
  ASSERT_TRUE(online.Initialize(full.LastModeSlice(0, 20)).ok());
  const double init_preprocess = online.last_stats().preprocess_seconds;
  ASSERT_TRUE(online.Append(full.LastModeSlice(20, 4)).ok());
  const double append_preprocess = online.last_stats().preprocess_seconds;
  // 4 new slices vs 20 initial ones: the compression cost must shrink
  // roughly proportionally (allow generous slack for timer noise).
  EXPECT_LT(append_preprocess, init_preprocess);
}

TEST(OnlineDTuckerTest, FourOrderStream) {
  Tensor full = MakeLowRankTensor({10, 9, 4, 12}, {2, 2, 2, 2}, 0.0, 9);
  OnlineDTucker online(MakeOptions({2, 2, 2, 2}));
  ASSERT_TRUE(online.Initialize(full.LastModeSlice(0, 6)).ok());
  ASSERT_TRUE(online.Append(full.LastModeSlice(6, 6)).ok());
  EXPECT_EQ(online.shape()[3], 12);
  EXPECT_LT(online.decomposition().RelativeErrorAgainst(full), 1e-8);
}

}  // namespace
}  // namespace dtucker
