#include "dtucker/out_of_core.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "data/generators.h"
#include "data/tensor_file.h"
#include "data/tensor_io.h"

namespace dtucker {
namespace {

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

class OutOfCoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    x_ = MakeLowRankTensor({18, 15, 4, 3}, {3, 3, 2, 2}, 0.1, 1);
    path_ = TempPath("ooc.dtnsr");
    ASSERT_TRUE(SaveTensor(x_, path_).ok());
  }
  void TearDown() override { std::remove(path_.c_str()); }

  Tensor x_;
  std::string path_;
};

TEST_F(OutOfCoreTest, ReaderHeaderMatches) {
  Result<TensorFileReader> reader = TensorFileReader::Open(path_);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_EQ(reader.value().shape(), x_.shape());
  EXPECT_EQ(reader.value().NumFrontalSlices(), x_.NumFrontalSlices());
}

TEST_F(OutOfCoreTest, SlicesMatchInMemoryTensor) {
  Result<TensorFileReader> reader = TensorFileReader::Open(path_);
  ASSERT_TRUE(reader.ok());
  for (Index l = 0; l < x_.NumFrontalSlices(); ++l) {
    Result<Matrix> slice = reader.value().ReadFrontalSlice(l);
    ASSERT_TRUE(slice.ok());
    EXPECT_TRUE(AlmostEqual(slice.value(), x_.FrontalSlice(l), 0.0))
        << "slice " << l;
  }
}

TEST_F(OutOfCoreTest, MultiSliceReadIsContiguous) {
  Result<TensorFileReader> reader = TensorFileReader::Open(path_);
  ASSERT_TRUE(reader.ok());
  std::vector<double> buf(static_cast<std::size_t>(18 * 15 * 3));
  ASSERT_TRUE(reader.value().ReadFrontalSlices(2, 3, buf.data()).ok());
  for (Index l = 0; l < 3; ++l) {
    Matrix expected = x_.FrontalSlice(l + 2);
    for (Index i = 0; i < 18 * 15; ++i) {
      EXPECT_EQ(buf[static_cast<std::size_t>(l * 18 * 15 + i)],
                expected.data()[i]);
    }
  }
}

TEST_F(OutOfCoreTest, ReadBoundsChecked) {
  Result<TensorFileReader> reader = TensorFileReader::Open(path_);
  ASSERT_TRUE(reader.ok());
  EXPECT_FALSE(reader.value().ReadFrontalSlice(-1).ok());
  EXPECT_FALSE(reader.value().ReadFrontalSlice(12).ok());
}

TEST_F(OutOfCoreTest, StreamedApproximationBitIdenticalToInMemory) {
  SliceApproximationOptions opt;
  opt.slice_rank = 3;
  Result<SliceApproximation> in_mem = ApproximateSlices(x_, opt);
  Result<SliceApproximation> streamed = ApproximateSlicesFromFile(path_, opt);
  ASSERT_TRUE(in_mem.ok() && streamed.ok())
      << streamed.status().ToString();
  ASSERT_EQ(in_mem.value().NumSlices(), streamed.value().NumSlices());
  for (Index l = 0; l < in_mem.value().NumSlices(); ++l) {
    const auto& a = in_mem.value().slices[static_cast<std::size_t>(l)];
    const auto& b = streamed.value().slices[static_cast<std::size_t>(l)];
    EXPECT_TRUE(AlmostEqual(a.u, b.u, 0.0)) << "slice " << l;
    EXPECT_TRUE(AlmostEqual(a.v, b.v, 0.0)) << "slice " << l;
    EXPECT_EQ(a.s, b.s) << "slice " << l;
  }
}

TEST_F(OutOfCoreTest, EndToEndDecompositionMatchesInMemory) {
  DTuckerOptions opt;
  opt.tucker.ranks = {3, 3, 2, 2};
  opt.tucker.max_iterations = 8;
  TuckerStats file_stats;
  Result<TuckerDecomposition> from_file =
      DTuckerFromFile(path_, opt, &file_stats);
  Result<TuckerDecomposition> from_mem = DTucker(x_, opt);
  ASSERT_TRUE(from_file.ok()) << from_file.status().ToString();
  ASSERT_TRUE(from_mem.ok());
  EXPECT_TRUE(AlmostEqual(from_file.value().core, from_mem.value().core, 0.0));
  EXPECT_GT(file_stats.preprocess_seconds, 0.0);
  EXPECT_LT(from_file.value().RelativeErrorAgainst(x_), 0.05);
}

TEST(TensorFileWriterTest, StreamedWriteReadRoundTrip) {
  const std::string path = ::testing::TempDir() + "/writer.dtnsr";
  Result<TensorFileWriter> writer =
      TensorFileWriter::Create(path, {5, 4, 6});
  ASSERT_TRUE(writer.ok());
  TensorFileWriter w = std::move(writer).ValueOrDie();
  Rng rng(11);
  Tensor expected({5, 4, 6});
  for (Index l = 0; l < 6; ++l) {
    Matrix slice = Matrix::GaussianRandom(5, 4, rng);
    expected.SetFrontalSlice(l, slice);
    ASSERT_TRUE(w.AppendSlice(slice).ok());
  }
  ASSERT_TRUE(w.Finish().ok());

  // The streamed file is byte-compatible with LoadTensor.
  Result<Tensor> loaded = LoadTensor(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(AlmostEqual(loaded.value(), expected, 0.0));
  std::remove(path.c_str());
}

TEST(TensorFileWriterTest, Validates) {
  EXPECT_FALSE(TensorFileWriter::Create("/tmp/x.dtnsr", {4}).ok());
  EXPECT_FALSE(TensorFileWriter::Create("/tmp/x.dtnsr", {4, 0, 2}).ok());

  const std::string path = ::testing::TempDir() + "/writer2.dtnsr";
  Result<TensorFileWriter> writer =
      TensorFileWriter::Create(path, {3, 3, 2});
  ASSERT_TRUE(writer.ok());
  TensorFileWriter w = std::move(writer).ValueOrDie();
  EXPECT_FALSE(w.AppendSlice(Matrix(2, 3)).ok());  // Wrong shape.
  EXPECT_FALSE(w.Finish().ok());                   // Slices missing.
  Matrix slice(3, 3);
  ASSERT_TRUE(w.AppendSlice(slice).ok());
  ASSERT_TRUE(w.AppendSlice(slice).ok());
  EXPECT_FALSE(w.AppendSlice(slice).ok());  // Too many.
  EXPECT_TRUE(w.Finish().ok());
  EXPECT_FALSE(w.Finish().ok());  // Already closed.
  std::remove(path.c_str());
}

TEST(OutOfCoreErrorsTest, MissingAndCorruptFiles) {
  SliceApproximationOptions opt;
  opt.slice_rank = 2;
  EXPECT_FALSE(ApproximateSlicesFromFile("/no/such.dtnsr", opt).ok());

  // A matrix (order 2) file: reader opens it, but out-of-core D-Tucker
  // requires order >= 3.
  const std::string path = ::testing::TempDir() + "/matrix.dtnsr";
  Rng rng(2);
  Tensor m = Tensor::GaussianRandom({6, 6}, rng);
  ASSERT_TRUE(SaveTensor(m, path).ok());
  EXPECT_FALSE(ApproximateSlicesFromFile(path, opt).ok());
  std::remove(path.c_str());

  // Truncated payload is rejected at Open.
  const std::string tpath = ::testing::TempDir() + "/trunc2.dtnsr";
  Tensor t = MakeLowRankTensor({8, 8, 4}, {2, 2, 2}, 0.0, 3);
  ASSERT_TRUE(SaveTensor(t, tpath).ok());
  ASSERT_EQ(truncate(tpath.c_str(), 200), 0);
  EXPECT_FALSE(TensorFileReader::Open(tpath).ok());
  std::remove(tpath.c_str());
}

}  // namespace
}  // namespace dtucker
