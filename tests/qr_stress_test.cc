// Stress tests for the blocked compact-WY QR: orthogonality and residual
// bounds across tall/wide/square/rank-deficient shapes (including
// power-of-two-plus-one sizes that catch edge-tile bugs), bitwise R
// agreement with the unblocked reference on single-panel shapes, bitwise
// determinism of the whole factorization — and of the rSVD built on it —
// across thread counts, and column-sweep triangular-solve round trips.
// Runs under both `ctest -L tsan` (-DDTUCKER_SANITIZE=thread) and
// `ctest -L asan` (-DDTUCKER_SANITIZE=address).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.h"
#include "linalg/blas.h"
#include "linalg/matrix.h"
#include "linalg/qr.h"
#include "rsvd/rsvd.h"

namespace dtucker {
namespace {

// ||Q^T Q - I||_max.
double OrthogonalityError(const Matrix& q) {
  Matrix gram(q.cols(), q.cols());
  Gemm(Trans::kYes, Trans::kNo, 1.0, q, q, 0.0, &gram);
  for (Index j = 0; j < gram.cols(); ++j) gram(j, j) -= 1.0;
  return gram.MaxAbs();
}

// ||Q R - A||_max.
double ResidualError(const Matrix& q, const Matrix& r, const Matrix& a) {
  Matrix qr = a;
  Gemm(Trans::kNo, Trans::kNo, 1.0, q, r, -1.0, &qr);
  return qr.MaxAbs();
}

bool BitwiseEqual(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  for (Index j = 0; j < a.cols(); ++j) {
    for (Index i = 0; i < a.rows(); ++i) {
      if (a(i, j) != b(i, j)) return false;
    }
  }
  return true;
}

struct Shape {
  Index m, n;
};

class QrStressTest : public ::testing::Test {
 protected:
  void TearDown() override { SetBlasThreads(1); }
};

// Shapes chosen to exercise every dispatch tier: the unblocked fast path
// (min <= kQrUnblockedMax), single narrow panels, two-level leaf panels,
// multi-panel aggregates with ragged last panels, wide matrices with
// trailing columns beyond min(m, n) — and power-of-two-plus-one sizes whose
// edge tiles don't fill micro-kernel or leaf boundaries.
const Shape kShapes[] = {
    {64, 64},   {65, 33},    {128, 65},  {257, 129}, {513, 64},
    {1025, 14}, {1025, 129}, {100, 300}, {65, 257},  {300, 300},
};

TEST_F(QrStressTest, FactorsAccurateAcrossShapes) {
  Rng rng(7);
  for (const Shape& s : kShapes) {
    Matrix a = Matrix::GaussianRandom(s.m, s.n, rng);
    QrResult qr = ThinQr(a);
    const Index p = std::min(s.m, s.n);
    ASSERT_EQ(qr.q.rows(), s.m);
    ASSERT_EQ(qr.q.cols(), p);
    ASSERT_EQ(qr.r.rows(), p);
    ASSERT_EQ(qr.r.cols(), s.n);
    EXPECT_LT(OrthogonalityError(qr.q), 1e-12)
        << "shape " << s.m << "x" << s.n;
    EXPECT_LT(ResidualError(qr.q, qr.r, a), 1e-10 * std::sqrt(double(s.m)))
        << "shape " << s.m << "x" << s.n;
    // R upper triangular.
    for (Index j = 0; j < qr.r.cols(); ++j) {
      for (Index i = j + 1; i < qr.r.rows(); ++i) {
        ASSERT_EQ(qr.r(i, j), 0.0);
      }
    }
  }
}

// A factorization whose min(m, n) fits in a single level-2 panel
// (kQrUnblockedMax < n < 2 * kQrPanelLeaf, no trailing columns) runs the
// same scalar reflector code as the unblocked reference, so R must agree
// bit for bit — the guard that the blocked driver's dispatch doesn't
// silently change small-problem numerics. 1025 rows keeps the column
// length off every power-of-two alignment sweet spot.
TEST_F(QrStressTest, SinglePanelRMatchesUnblockedBitwise) {
  Rng rng(11);
  for (Index n : {kQrUnblockedMax + 1, 2 * kQrPanelLeaf - 1}) {
    Matrix a = Matrix::GaussianRandom(1025, n, rng);
    QrResult blocked = ThinQr(a);
    QrResult reference = ThinQrUnblocked(a);
    EXPECT_TRUE(BitwiseEqual(blocked.r, reference.r)) << "n = " << n;
  }
}

// Leaf-blocked shapes reassociate reductions, so Q and R are only
// tolerance-close to the reference — but must satisfy the same bounds.
TEST_F(QrStressTest, BlockedAgreesWithUnblockedToTolerance) {
  Rng rng(13);
  Matrix a = Matrix::GaussianRandom(513, 96, rng);
  QrResult blocked = ThinQr(a);
  QrResult reference = ThinQrUnblocked(a);
  EXPECT_LT(OrthogonalityError(blocked.q), 1e-12);
  EXPECT_LT(ResidualError(blocked.q, blocked.r, a), 1e-10);
  // Same factorization up to column signs at worst; with identical
  // Householder sign conventions the factors match to rounding.
  Matrix diff = blocked.r - reference.r;
  EXPECT_LT(diff.MaxAbs(), 1e-10);
}

TEST_F(QrStressTest, RankDeficientColumnsStayOrthonormal) {
  Rng rng(17);
  Matrix a = Matrix::GaussianRandom(200, 40, rng);
  // Duplicate and zero out columns: reflectors with tau = 0 must not
  // contaminate the aggregate T or the formed Q.
  for (Index i = 0; i < 200; ++i) {
    a(i, 7) = a(i, 3);
    a(i, 21) = 2.0 * a(i, 5);
    a(i, 33) = 0.0;
  }
  Matrix q = QrOrthonormalize(a);
  EXPECT_LT(OrthogonalityError(q), 1e-12);
  QrResult qr = ThinQr(a);
  EXPECT_LT(ResidualError(qr.q, qr.r, a), 1e-10);
}

TEST_F(QrStressTest, ZeroMatrix) {
  Matrix a(300, 48);
  QrResult qr = ThinQr(a);
  EXPECT_LT(ResidualError(qr.q, qr.r, a), 1e-14);
  for (Index j = 0; j < qr.r.cols(); ++j) {
    for (Index i = 0; i < qr.r.rows(); ++i) ASSERT_EQ(qr.r(i, j), 0.0);
  }
}

// The factorization must be bit-identical whatever the BLAS thread count:
// the trailing updates and Q formation run on the deterministic GEMM
// scheduling, so per-slice results cannot depend on parallelism.
TEST_F(QrStressTest, ThreadCountDoesNotChangeBits) {
  Rng rng(19);
  Matrix a = Matrix::GaussianRandom(1025, 96, rng);
  SetBlasThreads(1);
  QrResult serial = ThinQr(a);
  SetBlasThreads(4);
  QrResult threaded = ThinQr(a);
  SetBlasThreads(1);
  EXPECT_TRUE(BitwiseEqual(serial.q, threaded.q));
  EXPECT_TRUE(BitwiseEqual(serial.r, threaded.r));
}

TEST_F(QrStressTest, RandomizedSvdThreadCountDoesNotChangeBits) {
  Rng rng(23);
  Matrix a = Matrix::GaussianRandom(400, 300, rng);
  RsvdOptions options;
  options.rank = 16;
  options.oversampling = 8;
  options.power_iterations = 2;
  SetBlasThreads(1);
  SvdResult serial = RandomizedSvd(a, options);
  SetBlasThreads(4);
  SvdResult threaded = RandomizedSvd(a, options);
  SetBlasThreads(1);
  EXPECT_TRUE(BitwiseEqual(serial.u, threaded.u));
  EXPECT_TRUE(BitwiseEqual(serial.v, threaded.v));
  ASSERT_EQ(serial.s.size(), threaded.s.size());
  for (std::size_t i = 0; i < serial.s.size(); ++i) {
    EXPECT_EQ(serial.s[i], threaded.s[i]);
  }
}

// Round-trip the column-sweep triangular solves against R from a real
// factorization: x = R^{-1} (R x0) must recover x0.
TEST_F(QrStressTest, TriangularSolvesRoundTrip) {
  Rng rng(29);
  Matrix a = Matrix::GaussianRandom(120, 48, rng);
  QrResult qr = ThinQr(a);
  Matrix r = qr.r.Block(0, 0, 48, 48);
  Matrix x0 = Matrix::GaussianRandom(48, 5, rng);
  Matrix rhs(48, 5);
  Gemm(Trans::kNo, Trans::kNo, 1.0, r, x0, 0.0, &rhs);
  Matrix x = SolveUpperTriangular(r, rhs);
  EXPECT_TRUE(AlmostEqual(x, x0, 1e-8));

  Matrix l = r.Transposed();
  Gemm(Trans::kNo, Trans::kNo, 1.0, l, x0, 0.0, &rhs);
  x = SolveLowerTriangular(l, rhs);
  EXPECT_TRUE(AlmostEqual(x, x0, 1e-8));
}

}  // namespace
}  // namespace dtucker
