#include "linalg/qr.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "linalg/blas.h"

namespace dtucker {
namespace {

// Property harness across shapes: A = QR, Q^T Q = I, R upper triangular.
struct QrCase {
  Index m, n;
};

class QrParamTest : public ::testing::TestWithParam<QrCase> {};

TEST_P(QrParamTest, FactorsSatisfyDefiningProperties) {
  const QrCase c = GetParam();
  Rng rng(11 + c.m * 31 + c.n);
  Matrix a = Matrix::GaussianRandom(c.m, c.n, rng);
  QrResult qr = ThinQr(a);

  const Index p = std::min(c.m, c.n);
  ASSERT_EQ(qr.q.rows(), c.m);
  ASSERT_EQ(qr.q.cols(), p);
  ASSERT_EQ(qr.r.rows(), p);
  ASSERT_EQ(qr.r.cols(), c.n);

  // Q^T Q = I.
  EXPECT_TRUE(AlmostEqual(MultiplyTN(qr.q, qr.q), Matrix::Identity(p), 1e-10));
  // Q R = A.
  EXPECT_TRUE(AlmostEqual(Multiply(qr.q, qr.r), a, 1e-10));
  // R upper triangular.
  for (Index j = 0; j < qr.r.cols(); ++j) {
    for (Index i = j + 1; i < qr.r.rows(); ++i) EXPECT_EQ(qr.r(i, j), 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, QrParamTest,
                         ::testing::Values(QrCase{1, 1}, QrCase{5, 5},
                                           QrCase{10, 3}, QrCase{200, 12},
                                           QrCase{3, 10}, QrCase{7, 50},
                                           QrCase{64, 64}));

TEST(QrTest, OrthonormalizeRankDeficient) {
  // Two identical columns: Q must still have orthonormal columns.
  Matrix a(6, 2);
  Rng rng(3);
  for (Index i = 0; i < 6; ++i) {
    a(i, 0) = rng.Gaussian();
    a(i, 1) = a(i, 0);
  }
  Matrix q = QrOrthonormalize(a);
  EXPECT_TRUE(AlmostEqual(MultiplyTN(q, q), Matrix::Identity(2), 1e-10));
}

TEST(QrTest, ZeroMatrixDoesNotCrash) {
  Matrix a = Matrix::Zero(5, 3);
  QrResult qr = ThinQr(a);
  EXPECT_TRUE(AlmostEqual(Multiply(qr.q, qr.r), a, 1e-12));
}

TEST(QrTest, SolveUpperTriangular) {
  Matrix r({{2, 1, 1}, {0, 3, 2}, {0, 0, 4}});
  Rng rng(5);
  Matrix x_true = Matrix::GaussianRandom(3, 2, rng);
  Matrix b = Multiply(r, x_true);
  Matrix x = SolveUpperTriangular(r, b);
  EXPECT_TRUE(AlmostEqual(x, x_true, 1e-12));
}

TEST(QrTest, SolveLowerTriangular) {
  Matrix l({{2, 0, 0}, {1, 3, 0}, {1, 2, 4}});
  Rng rng(6);
  Matrix x_true = Matrix::GaussianRandom(3, 2, rng);
  Matrix b = Multiply(l, x_true);
  Matrix x = SolveLowerTriangular(l, b);
  EXPECT_TRUE(AlmostEqual(x, x_true, 1e-12));
}

TEST(QrTest, LeastSquaresViaQr) {
  // Overdetermined consistent system recovered exactly.
  Rng rng(7);
  Matrix a = Matrix::GaussianRandom(30, 4, rng);
  Matrix x_true = Matrix::GaussianRandom(4, 1, rng);
  Matrix b = Multiply(a, x_true);
  QrResult qr = ThinQr(a);
  Matrix x = SolveUpperTriangular(qr.r, MultiplyTN(qr.q, b));
  EXPECT_TRUE(AlmostEqual(x, x_true, 1e-10));
}

}  // namespace
}  // namespace dtucker
