#include "tucker/rank_estimation.h"

#include <gtest/gtest.h>

#include "data/generators.h"
#include "tucker/tucker_als.h"

namespace dtucker {
namespace {

TEST(RankEstimationTest, ValidatesThreshold) {
  Tensor x = MakeLowRankTensor({8, 8, 8}, {2, 2, 2}, 0.0, 1);
  EXPECT_FALSE(SuggestRanks(x, 0.0).ok());
  EXPECT_FALSE(SuggestRanks(x, 1.5).ok());
  EXPECT_TRUE(SuggestRanks(x, 1.0).ok());
}

TEST(RankEstimationTest, ExactLowRankFoundAtFullEnergy) {
  Tensor x = MakeLowRankTensor({14, 12, 10}, {3, 4, 5}, 0.0, 2);
  Result<RankSuggestion> sug = SuggestRanks(x, 1.0 - 1e-12);
  ASSERT_TRUE(sug.ok());
  EXPECT_EQ(sug.value().ranks, (std::vector<Index>{3, 4, 5}));
  for (double e : sug.value().retained_energy) EXPECT_GT(e, 1.0 - 1e-9);
}

TEST(RankEstimationTest, LowerThresholdGivesSmallerRanks) {
  Tensor x = MakeLowRankTensor({16, 16, 16}, {8, 8, 8}, 0.1, 3);
  Result<RankSuggestion> strict = SuggestRanks(x, 0.999);
  Result<RankSuggestion> loose = SuggestRanks(x, 0.7);
  ASSERT_TRUE(strict.ok() && loose.ok());
  for (std::size_t n = 0; n < 3; ++n) {
    EXPECT_LE(loose.value().ranks[n], strict.value().ranks[n]);
  }
}

TEST(RankEstimationTest, MaxRankCaps) {
  Tensor x = MakeLowRankTensor({16, 16, 16}, {8, 8, 8}, 0.0, 4);
  Result<RankSuggestion> sug = SuggestRanks(x, 1.0 - 1e-12, /*max_rank=*/3);
  ASSERT_TRUE(sug.ok());
  for (Index r : sug.value().ranks) EXPECT_LE(r, 3);
  // Retained energy reflects the cap (below the threshold).
  for (double e : sug.value().retained_energy) EXPECT_LT(e, 1.0);
}

TEST(RankEstimationTest, SpectraDescendAndSumToNormSquared) {
  Tensor x = MakeLowRankTensor({10, 12, 14}, {4, 4, 4}, 0.3, 5);
  Result<RankSuggestion> sug = SuggestRanks(x, 0.9);
  ASSERT_TRUE(sug.ok());
  for (Index n = 0; n < 3; ++n) {
    const auto& spec = sug.value().spectra[static_cast<std::size_t>(n)];
    ASSERT_EQ(static_cast<Index>(spec.size()), x.dim(n));
    double sum = 0;
    for (std::size_t i = 0; i < spec.size(); ++i) {
      if (i > 0) {
        EXPECT_LE(spec[i], spec[i - 1] + 1e-9);
      }
      sum += spec[i];
    }
    // Mode-n squared singular values sum to ||X||_F^2.
    EXPECT_NEAR(sum, x.SquaredNorm(), 1e-6 * x.SquaredNorm());
  }
}

TEST(RankEstimationTest, SuggestedRanksGiveTargetAccuracy) {
  // End-to-end: decomposing at the suggested ranks should reach roughly
  // the requested energy.
  Tensor x = MakeLowRankTensor({20, 18, 16}, {6, 6, 6}, 0.2, 6);
  const double threshold = 0.95;
  Result<RankSuggestion> sug = SuggestRanks(x, threshold);
  ASSERT_TRUE(sug.ok());
  TuckerAlsOptions opt;
  opt.ranks = sug.value().ranks;
  opt.max_iterations = 10;
  Result<TuckerDecomposition> dec = TuckerAls(x, opt);
  ASSERT_TRUE(dec.ok());
  // Error <= N * (1 - threshold) is the HOSVD truncation bound.
  EXPECT_LT(dec.value().RelativeErrorAgainst(x), 3 * (1 - threshold) + 0.01);
}

}  // namespace
}  // namespace dtucker
