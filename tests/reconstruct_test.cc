#include "tucker/reconstruct.h"

#include <gtest/gtest.h>

#include "data/generators.h"
#include "tucker/hosvd.h"

namespace dtucker {
namespace {

class ReconstructTest : public ::testing::Test {
 protected:
  void SetUp() override {
    x_ = MakeLowRankTensor({9, 8, 7, 6}, {3, 3, 3, 3}, 0.1, 1);
    dec_ = StHosvd(x_, {3, 3, 3, 3}).ValueOrDie();
    full_ = dec_.Reconstruct();
  }
  Tensor x_;
  TuckerDecomposition dec_;
  Tensor full_;
};

TEST_F(ReconstructTest, ElementMatchesFullReconstruction) {
  for (Index l = 0; l < 6; l += 2) {
    for (Index k = 0; k < 7; k += 3) {
      for (Index j = 0; j < 8; j += 3) {
        for (Index i = 0; i < 9; i += 4) {
          Result<double> v = ReconstructElement(dec_, {i, j, k, l});
          ASSERT_TRUE(v.ok());
          EXPECT_NEAR(v.value(), full_(i, j, k, l), 1e-10);
        }
      }
    }
  }
}

TEST_F(ReconstructTest, ElementValidatesIndex) {
  EXPECT_FALSE(ReconstructElement(dec_, {0, 0, 0}).ok());       // Order.
  EXPECT_FALSE(ReconstructElement(dec_, {9, 0, 0, 0}).ok());    // Range.
  EXPECT_FALSE(ReconstructElement(dec_, {-1, 0, 0, 0}).ok());
}

TEST_F(ReconstructTest, FrontalSliceMatchesFullReconstruction) {
  for (Index l = 0; l < full_.NumFrontalSlices(); l += 7) {
    Result<Matrix> slice = ReconstructFrontalSlice(dec_, l);
    ASSERT_TRUE(slice.ok());
    EXPECT_TRUE(AlmostEqual(slice.value(), full_.FrontalSlice(l), 1e-10))
        << "slice " << l;
  }
}

TEST_F(ReconstructTest, FrontalSliceValidates) {
  EXPECT_FALSE(ReconstructFrontalSlice(dec_, -1).ok());
  EXPECT_FALSE(ReconstructFrontalSlice(dec_, 42).ok());
}

TEST_F(ReconstructTest, LastModeRangeMatchesFullReconstruction) {
  Result<Tensor> range = ReconstructLastModeRange(dec_, 2, 3);
  ASSERT_TRUE(range.ok());
  EXPECT_TRUE(AlmostEqual(range.value(), full_.LastModeSlice(2, 3), 1e-10));
}

TEST_F(ReconstructTest, LastModeRangeValidates) {
  EXPECT_FALSE(ReconstructLastModeRange(dec_, -1, 2).ok());
  EXPECT_FALSE(ReconstructLastModeRange(dec_, 5, 2).ok());
}

TEST(ReconstructThreeOrderTest, FrontalSliceOnVideoDecomposition) {
  Tensor video = MakeVideoAnalog(20, 16, 12, 2, 0.05, 2);
  TuckerDecomposition dec = StHosvd(video, {5, 5, 5}).ValueOrDie();
  Tensor full = dec.Reconstruct();
  for (Index t = 0; t < 12; t += 5) {
    Result<Matrix> frame = ReconstructFrontalSlice(dec, t);
    ASSERT_TRUE(frame.ok());
    EXPECT_TRUE(AlmostEqual(frame.value(), full.FrontalSlice(t), 1e-10));
  }
}

}  // namespace
}  // namespace dtucker
