// Failure injection and degenerate-input robustness: all-zero data, zero
// slices (black video frames), single-slice tensors, constant tensors,
// dimension-1 modes. Every public solver must return cleanly (OK with a
// sane result, or a descriptive error) — never crash or emit NaN.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/registry.h"
#include "common/rng.h"
#include "cp/cp_als.h"
#include "data/generators.h"
#include "dtucker/dtucker.h"
#include "dtucker/online_dtucker.h"
#include "tensor/tensor_utils.h"
#include "tucker/tucker_als.h"

namespace dtucker {
namespace {

bool DecompositionIsFinite(const TuckerDecomposition& dec) {
  if (ContainsNonFinite(dec.core)) return false;
  for (const auto& f : dec.factors) {
    for (Index i = 0; i < f.size(); ++i) {
      if (!std::isfinite(f.data()[i])) return false;
    }
  }
  return true;
}

TEST(RobustnessTest, AllZeroTensor) {
  Tensor x({10, 9, 8});  // Zeros.
  DTuckerOptions dopt;
  dopt.tucker.ranks = {2, 2, 2};
  dopt.tucker.max_iterations = 5;
  Result<TuckerDecomposition> dt = DTucker(x, dopt);
  ASSERT_TRUE(dt.ok()) << dt.status().ToString();
  EXPECT_TRUE(DecompositionIsFinite(dt.value()));
  EXPECT_NEAR(dt.value().core.FrobeniusNorm(), 0.0, 1e-12);

  TuckerAlsOptions aopt;
  aopt.ranks = {2, 2, 2};
  Result<TuckerDecomposition> als = TuckerAls(x, aopt);
  ASSERT_TRUE(als.ok());
  EXPECT_TRUE(DecompositionIsFinite(als.value()));
}

TEST(RobustnessTest, ZeroSlicesWithinSignal) {
  // Black frames inside a video: some slices are exactly zero.
  Tensor x = MakeLowRankTensor({14, 12, 10}, {3, 3, 3}, 0.1, 1);
  Matrix zero(14, 12);
  for (Index l : {0, 4, 9}) x.SetFrontalSlice(l, zero);

  DTuckerOptions opt;
  opt.tucker.ranks = {3, 3, 3};
  opt.tucker.max_iterations = 10;
  Result<TuckerDecomposition> dec = DTucker(x, opt);
  ASSERT_TRUE(dec.ok()) << dec.status().ToString();
  EXPECT_TRUE(DecompositionIsFinite(dec.value()));
  EXPECT_LT(dec.value().RelativeErrorAgainst(x), 0.2);
}

TEST(RobustnessTest, ConstantTensor) {
  Tensor x({8, 8, 8});
  for (Index i = 0; i < x.size(); ++i) x.data()[i] = 3.5;
  DTuckerOptions opt;
  opt.tucker.ranks = {1, 1, 1};  // A constant tensor is exactly rank 1.
  opt.tucker.max_iterations = 5;
  Result<TuckerDecomposition> dec = DTucker(x, opt);
  ASSERT_TRUE(dec.ok());
  EXPECT_LT(dec.value().RelativeErrorAgainst(x), 1e-10);
}

TEST(RobustnessTest, SingleSliceTensor) {
  // I3 = 1: the slice grid has exactly one slice.
  Tensor x = MakeLowRankTensor({12, 10, 1}, {2, 2, 1}, 0.05, 2);
  DTuckerOptions opt;
  opt.tucker.ranks = {2, 2, 1};
  opt.tucker.max_iterations = 5;
  Result<TuckerDecomposition> dec = DTucker(x, opt);
  ASSERT_TRUE(dec.ok()) << dec.status().ToString();
  EXPECT_LT(dec.value().RelativeErrorAgainst(x), 0.05);
}

TEST(RobustnessTest, DimensionOneTrailingMode) {
  // Order-4 tensor with a singleton mode.
  Tensor x = MakeLowRankTensor({10, 9, 1, 6}, {2, 2, 1, 2}, 0.0, 3);
  DTuckerOptions opt;
  opt.tucker.ranks = {2, 2, 1, 2};
  opt.tucker.max_iterations = 5;
  Result<TuckerDecomposition> dec = DTucker(x, opt);
  ASSERT_TRUE(dec.ok()) << dec.status().ToString();
  EXPECT_LT(dec.value().RelativeErrorAgainst(x), 1e-10);
}

TEST(RobustnessTest, RankOneEverything) {
  Tensor x = MakeLowRankTensor({6, 5, 4}, {1, 1, 1}, 0.0, 4);
  for (TuckerMethod m : AllTuckerMethods()) {
    MethodOptions opt;
    opt.tucker.ranks = {1, 1, 1};
    opt.tucker.max_iterations = 10;
    opt.mach_sample_rate = 1.0;
    opt.sketch_factor = 16.0;
    Result<MethodRun> run = RunTuckerMethod(m, x, opt);
    ASSERT_TRUE(run.ok()) << TuckerMethodName(m);
    EXPECT_TRUE(DecompositionIsFinite(run.value().decomposition))
        << TuckerMethodName(m);
    EXPECT_LT(run.value().relative_error, 0.15) << TuckerMethodName(m);
  }
}

TEST(RobustnessTest, TinyValuesDoNotUnderflowToGarbage) {
  Tensor x = MakeLowRankTensor({10, 9, 8}, {2, 2, 2}, 0.1, 5);
  x *= 1e-150;
  DTuckerOptions opt;
  opt.tucker.ranks = {2, 2, 2};
  opt.tucker.max_iterations = 5;
  Result<TuckerDecomposition> dec = DTucker(x, opt);
  ASSERT_TRUE(dec.ok());
  EXPECT_TRUE(DecompositionIsFinite(dec.value()));
  EXPECT_LT(dec.value().RelativeErrorAgainst(x), 0.1);
}

TEST(RobustnessTest, HugeValuesDoNotOverflow) {
  Tensor x = MakeLowRankTensor({10, 9, 8}, {2, 2, 2}, 0.1, 6);
  x *= 1e120;  // Squared norms reach 1e246 — still finite in double.
  DTuckerOptions opt;
  opt.tucker.ranks = {2, 2, 2};
  opt.tucker.max_iterations = 5;
  Result<TuckerDecomposition> dec = DTucker(x, opt);
  ASSERT_TRUE(dec.ok());
  EXPECT_TRUE(DecompositionIsFinite(dec.value()));
}

TEST(RobustnessTest, OnlineWithZeroChunk) {
  OnlineDTuckerOptions opt;
  opt.dtucker.tucker.ranks = {2, 2, 2};
  opt.dtucker.tucker.max_iterations = 5;
  OnlineDTucker online(opt);
  Tensor first = MakeLowRankTensor({10, 8, 6}, {2, 2, 2}, 0.1, 7);
  ASSERT_TRUE(online.Initialize(first).ok());
  Tensor zeros({10, 8, 4});
  ASSERT_TRUE(online.Append(zeros).ok());
  EXPECT_TRUE(DecompositionIsFinite(online.decomposition()));
  EXPECT_EQ(online.shape()[2], 10);
}

TEST(RobustnessTest, CpAlsOnZeroTensor) {
  Tensor x({6, 5, 4});
  CpAlsOptions opt;
  opt.rank = 2;
  opt.max_iterations = 5;
  Result<CpDecomposition> dec = CpAls(x, opt);
  // Zero data makes the normal equations singular; either a clean error
  // or a finite (zero-weight) model is acceptable — never a crash/NaN.
  if (dec.ok()) {
    Tensor rec = dec.value().Reconstruct();
    EXPECT_FALSE(ContainsNonFinite(rec));
  }
}

}  // namespace
}  // namespace dtucker
