#include "tucker/rounding.h"

#include <gtest/gtest.h>

#include "data/generators.h"
#include "dtucker/dtucker.h"
#include "linalg/blas.h"
#include "tucker/tucker_als.h"

namespace dtucker {
namespace {

TuckerDecomposition MakeDecomposition(uint64_t seed, Index rank = 6) {
  Tensor x = MakeLowRankTensor({16, 14, 12}, {8, 8, 8}, 0.2, seed);
  TuckerAlsOptions opt;
  opt.ranks = {rank, rank, rank};
  opt.max_iterations = 10;
  return TuckerAls(x, opt).ValueOrDie();
}

TEST(RoundingTest, ValidatesRanks) {
  TuckerDecomposition dec = MakeDecomposition(1);
  EXPECT_FALSE(RoundTucker(dec, {2, 2}).ok());        // Wrong count.
  EXPECT_FALSE(RoundTucker(dec, {0, 2, 2}).ok());     // Non-positive.
  EXPECT_FALSE(RoundTucker(dec, {7, 2, 2}).ok());     // Exceeds J.
  EXPECT_TRUE(RoundTucker(dec, {6, 6, 6}).ok());      // No-op allowed.
}

TEST(RoundingTest, KeepsOrthonormalFactorsAndShape) {
  TuckerDecomposition dec = MakeDecomposition(2);
  Result<TuckerDecomposition> rounded = RoundTucker(dec, {3, 2, 4});
  ASSERT_TRUE(rounded.ok());
  EXPECT_EQ(rounded.value().core.shape(), (std::vector<Index>{3, 2, 4}));
  for (const auto& f : rounded.value().factors) {
    EXPECT_TRUE(AlmostEqual(MultiplyTN(f, f), Matrix::Identity(f.cols()),
                            1e-9));
  }
  EXPECT_EQ(rounded.value().factors[0].rows(), 16);
}

TEST(RoundingTest, FullRankRoundIsLossless) {
  TuckerDecomposition dec = MakeDecomposition(3);
  Result<TuckerDecomposition> rounded = RoundTucker(dec, {6, 6, 6});
  ASSERT_TRUE(rounded.ok());
  EXPECT_TRUE(AlmostEqual(rounded.value().Reconstruct(), dec.Reconstruct(),
                          1e-8));
}

TEST(RoundingTest, MatchesDirectDecompositionAtLowerRank) {
  // Rounding a rank-6 model to rank 3 should be close to decomposing the
  // tensor at rank 3 directly (exact when the model nests, near-exact for
  // ALS fixed points).
  Tensor x = MakeLowRankTensor({16, 14, 12}, {8, 8, 8}, 0.2, 4);
  TuckerAlsOptions opt6;
  opt6.ranks = {6, 6, 6};
  opt6.max_iterations = 10;
  TuckerDecomposition dec6 = TuckerAls(x, opt6).ValueOrDie();
  Result<TuckerDecomposition> rounded = RoundTucker(dec6, {3, 3, 3});
  ASSERT_TRUE(rounded.ok());

  TuckerAlsOptions opt3;
  opt3.ranks = {3, 3, 3};
  opt3.max_iterations = 10;
  TuckerDecomposition dec3 = TuckerAls(x, opt3).ValueOrDie();

  const double rounded_err = rounded.value().RelativeErrorAgainst(x);
  const double direct_err = dec3.RelativeErrorAgainst(x);
  EXPECT_LT(rounded_err, direct_err * 1.1 + 1e-6);
}

TEST(RoundingTest, ToleranceModeTrimsNoiseRanks) {
  // Decompose an exactly rank-(2,2,2) tensor at rank 5; rounding with a
  // tiny tolerance should recover ranks (2,2,2).
  Tensor x = MakeLowRankTensor({14, 12, 10}, {2, 2, 2}, 0.0, 5);
  TuckerAlsOptions opt;
  opt.ranks = {5, 5, 5};
  opt.max_iterations = 10;
  TuckerDecomposition dec = TuckerAls(x, opt).ValueOrDie();
  Result<TuckerDecomposition> rounded = RoundTuckerToTolerance(dec, 1e-10);
  ASSERT_TRUE(rounded.ok());
  EXPECT_EQ(rounded.value().core.shape(), (std::vector<Index>{2, 2, 2}));
  EXPECT_LT(rounded.value().RelativeErrorAgainst(x), 1e-9);
}

TEST(RoundingTest, ToleranceValidated) {
  TuckerDecomposition dec = MakeDecomposition(6);
  EXPECT_FALSE(RoundTuckerToTolerance(dec, -0.1).ok());
  EXPECT_FALSE(RoundTuckerToTolerance(dec, 1.0).ok());
}

TEST(RoundingTest, WorksOnDTuckerOutput) {
  Tensor x = MakeLowRankTensor({20, 18, 14}, {6, 6, 6}, 0.1, 7);
  DTuckerOptions opt;
  opt.tucker.ranks = {6, 6, 6};
  opt.tucker.max_iterations = 8;
  TuckerDecomposition dec = DTucker(x, opt).ValueOrDie();
  Result<TuckerDecomposition> rounded = RoundTucker(dec, {4, 4, 4});
  ASSERT_TRUE(rounded.ok());
  // A random Gaussian core is ungraded, so truncating 6 -> 4 genuinely
  // loses energy; the bar is matching a direct rank-4 fit, not a small
  // absolute error.
  DTuckerOptions direct_opt;
  direct_opt.tucker.ranks = {4, 4, 4};
  direct_opt.tucker.max_iterations = 8;
  TuckerDecomposition direct = DTucker(x, direct_opt).ValueOrDie();
  EXPECT_LT(rounded.value().RelativeErrorAgainst(x),
            direct.RelativeErrorAgainst(x) * 1.15 + 1e-6);
}

}  // namespace
}  // namespace dtucker
