#include "rsvd/rsvd.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "linalg/blas.h"
#include "linalg/qr.h"

namespace dtucker {
namespace {

// A matrix with exact rank r plus optional noise.
Matrix LowRankMatrix(Index m, Index n, Index r, double noise, uint64_t seed) {
  Rng rng(seed);
  Matrix b = Matrix::GaussianRandom(m, r, rng);
  Matrix c = Matrix::GaussianRandom(r, n, rng);
  Matrix a = Multiply(b, c);
  if (noise > 0) {
    Matrix e = Matrix::GaussianRandom(m, n, rng);
    a += e * (noise * a.FrobeniusNorm() / e.FrobeniusNorm());
  }
  return a;
}

TEST(RsvdTest, ExactRecoveryOfLowRankMatrix) {
  Matrix a = LowRankMatrix(80, 60, 5, 0.0, 1);
  RsvdOptions opt;
  opt.rank = 5;
  SvdResult svd = RandomizedSvd(a, opt);
  ASSERT_EQ(svd.u.cols(), 5);
  Matrix rec = svd.Reconstruct();
  EXPECT_LT((a - rec).FrobeniusNorm() / a.FrobeniusNorm(), 1e-9);
}

TEST(RsvdTest, RangeFinderCapturesRange) {
  Matrix a = LowRankMatrix(100, 40, 6, 0.0, 2);
  RsvdOptions opt;
  opt.rank = 6;
  Matrix q = RandomizedRangeFinder(a, opt);
  // ||A - Q Q^T A|| should vanish for exact rank 6 with oversampling.
  Matrix proj = Multiply(q, MultiplyTN(q, a));
  EXPECT_LT((a - proj).FrobeniusNorm() / a.FrobeniusNorm(), 1e-9);
  // Q orthonormal.
  EXPECT_TRUE(AlmostEqual(MultiplyTN(q, q), Matrix::Identity(q.cols()),
                          1e-10));
}

TEST(RsvdTest, NoisyMatrixErrorNearOptimal) {
  Matrix a = LowRankMatrix(120, 90, 8, 0.1, 3);
  RsvdOptions opt;
  opt.rank = 8;
  opt.power_iterations = 2;
  SvdResult rsvd = RandomizedSvd(a, opt);
  SvdResult exact = ThinSvd(a);
  exact.Truncate(8);
  const double err_r = (a - rsvd.Reconstruct()).SquaredNorm();
  const double err_e = (a - exact.Reconstruct()).SquaredNorm();
  // Within 5% of the optimal rank-8 error.
  EXPECT_LT(err_r, err_e * 1.05);
}

TEST(RsvdTest, DeterministicInSeed) {
  Matrix a = LowRankMatrix(50, 50, 4, 0.05, 4);
  RsvdOptions opt;
  opt.rank = 4;
  opt.seed = 99;
  SvdResult s1 = RandomizedSvd(a, opt);
  SvdResult s2 = RandomizedSvd(a, opt);
  EXPECT_TRUE(AlmostEqual(s1.u, s2.u, 0.0));
  opt.seed = 100;
  SvdResult s3 = RandomizedSvd(a, opt);
  EXPECT_FALSE(AlmostEqual(s1.u, s3.u, 1e-12));
}

TEST(RsvdTest, RankClampedToMinDimension) {
  Rng rng(5);
  Matrix a = Matrix::GaussianRandom(20, 3, rng);
  RsvdOptions opt;
  opt.rank = 10;  // More than min(m, n) = 3.
  SvdResult svd = RandomizedSvd(a, opt);
  EXPECT_EQ(svd.u.cols(), 3);
  EXPECT_TRUE(AlmostEqual(svd.Reconstruct(), a, 1e-8));
}

TEST(RsvdTest, SingularValuesDescending) {
  Matrix a = LowRankMatrix(60, 60, 10, 0.2, 6);
  RsvdOptions opt;
  opt.rank = 10;
  SvdResult svd = RandomizedSvd(a, opt);
  for (std::size_t i = 0; i + 1 < svd.s.size(); ++i) {
    EXPECT_GE(svd.s[i], svd.s[i + 1]);
  }
}

// Power-iteration sweep: more iterations should not make the subspace
// worse on a matrix with slowly decaying spectrum.
class RsvdPowerParamTest : public ::testing::TestWithParam<int> {};

TEST_P(RsvdPowerParamTest, ErrorBoundedByOptimalPlusSlack) {
  Matrix a = LowRankMatrix(100, 80, 12, 0.3, 7);
  RsvdOptions opt;
  opt.rank = 6;
  opt.power_iterations = GetParam();
  SvdResult rsvd = RandomizedSvd(a, opt);
  SvdResult exact = ThinSvd(a);
  exact.Truncate(6);
  const double err_r = (a - rsvd.Reconstruct()).SquaredNorm();
  const double err_e = (a - exact.Reconstruct()).SquaredNorm();
  EXPECT_LT(err_r, err_e * 1.5) << "q = " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(PowerIterations, RsvdPowerParamTest,
                         ::testing::Values(0, 1, 2, 3));

}  // namespace
}  // namespace dtucker
