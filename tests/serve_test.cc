#include "serve/server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "data/generators.h"
#include "serve/job_queue.h"
#include "serve/model_cache.h"
#include "tucker/reconstruct.h"

namespace dtucker {
namespace {

// Bit-exact double comparison (the serving contract is bitwise equality
// with the full reconstruction, not epsilon closeness).
bool BitEq(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

ModelSpec Spec(const std::string& id) {
  ModelSpec s;
  s.dataset_id = id;
  s.ranks = {3, 3, 3};
  s.max_iterations = 3;
  return s;
}

std::shared_ptr<const Tensor> SmallTensor(std::uint64_t seed = 1) {
  return std::make_shared<Tensor>(
      MakeLowRankTensor({12, 10, 8}, {3, 3, 3}, 0.1, seed));
}

SolveRequest Req(std::shared_ptr<const Tensor> t, const std::string& id) {
  SolveRequest r;
  r.model = Spec(id);
  r.tensor = std::move(t);
  return r;
}

void WaitForCount(const std::atomic<int>& counter, int at_least) {
  while (counter.load() < at_least) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

// --- ModelSpec ----------------------------------------------------------

TEST(ModelSpecTest, ValidateRejectsBadSpecs) {
  EXPECT_FALSE(ModelSpec{}.Validate().ok());  // No dataset id.
  ModelSpec s = Spec("x");
  EXPECT_TRUE(s.Validate().ok());
  s.ranks = {3, 0, 3};
  EXPECT_FALSE(s.Validate().ok());
  s = Spec("x");
  s.max_iterations = 0;
  EXPECT_FALSE(s.Validate().ok());
  s = Spec("x");
  s.tolerance = 0;
  EXPECT_FALSE(s.Validate().ok());
  s = Spec("x");
  s.solver_spec = "nonsense=value";
  EXPECT_FALSE(s.Validate().ok());
}

TEST(ModelSpecTest, CanonicalKeySeparatesModels) {
  const std::string base = Spec("x").CanonicalKey();
  EXPECT_EQ(base, Spec("x").CanonicalKey());  // Deterministic.
  ModelSpec s = Spec("x");
  s.ranks = {3, 3, 4};
  EXPECT_NE(base, s.CanonicalKey());
  s = Spec("x");
  s.seed = 7;
  EXPECT_NE(base, s.CanonicalKey());
  s = Spec("x");
  s.tolerance = 1e-5;
  EXPECT_NE(base, s.CanonicalKey());
  EXPECT_NE(base, Spec("y").CanonicalKey());
  EXPECT_NE(Spec("x").CanonicalHash(), Spec("y").CanonicalHash());
}

TEST(SolveRequestTest, ValidateRequiresExactlyOneInput) {
  SolveRequest r;
  r.model = Spec("x");
  EXPECT_FALSE(r.Validate().ok());  // Neither tensor nor path.
  r.tensor = SmallTensor();
  EXPECT_TRUE(r.Validate().ok());
  r.tensor_path = "/tmp/x.dtnsr";
  EXPECT_FALSE(r.Validate().ok());  // Both.
  r.tensor = nullptr;
  EXPECT_TRUE(r.Validate().ok());
  r.deadline_seconds = -1;
  EXPECT_FALSE(r.Validate().ok());
}

// --- JobQueue -----------------------------------------------------------

TEST(JobQueueTest, PriorityThenFifoOrder) {
  JobQueue q(8);
  auto make = [] { return std::make_shared<ServeJob>(); };
  auto low1 = make(), low2 = make(), high = make();
  ASSERT_TRUE(q.TryPush(low1, 0).ok());
  ASSERT_TRUE(q.TryPush(low2, 0).ok());
  ASSERT_TRUE(q.TryPush(high, 5).ok());
  EXPECT_EQ(q.Depth(), 3);
  EXPECT_EQ(q.Pop(), high);  // Highest priority first.
  EXPECT_EQ(q.Pop(), low1);  // FIFO within a priority.
  EXPECT_EQ(q.Pop(), low2);
}

TEST(JobQueueTest, RejectsWhenFullAndDrainsAfterClose) {
  JobQueue q(2);
  ASSERT_TRUE(q.TryPush(std::make_shared<ServeJob>(), 0).ok());
  ASSERT_TRUE(q.TryPush(std::make_shared<ServeJob>(), 0).ok());
  const Status full = q.TryPush(std::make_shared<ServeJob>(), 0);
  EXPECT_EQ(full.code(), StatusCode::kResourceExhausted);
  q.Close();
  EXPECT_EQ(q.TryPush(std::make_shared<ServeJob>(), 0).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_NE(q.Pop(), nullptr);  // Pending entries drain after Close.
  EXPECT_NE(q.Pop(), nullptr);
  EXPECT_EQ(q.Pop(), nullptr);  // Closed and drained.
}

// --- ModelCache ---------------------------------------------------------

std::shared_ptr<const CachedModel> FakeModel(std::size_t bytes) {
  auto m = std::make_shared<CachedModel>();
  m->bytes = bytes;
  return m;
}

TEST(ModelCacheTest, EvictsLeastRecentlyUsed) {
  ModelCacheOptions opt;
  opt.max_entries = 2;
  ModelCache cache(opt);
  cache.Put("a", FakeModel(8));
  cache.Put("b", FakeModel(8));
  ASSERT_NE(cache.Get("a"), nullptr);  // Bumps "a"; "b" is now LRU.
  cache.Put("c", FakeModel(8));
  EXPECT_TRUE(cache.Contains("a"));
  EXPECT_FALSE(cache.Contains("b"));
  EXPECT_TRUE(cache.Contains("c"));
  const ModelCache::Stats s = cache.GetStats();
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_EQ(s.entries, 2);
}

TEST(ModelCacheTest, ByteBoundEvictsButKeepsNewestEntry) {
  ModelCacheOptions opt;
  opt.max_entries = 16;
  opt.max_bytes = 100;
  ModelCache cache(opt);
  cache.Put("a", FakeModel(60));
  cache.Put("b", FakeModel(60));  // 120 > 100: evicts "a".
  EXPECT_FALSE(cache.Contains("a"));
  EXPECT_TRUE(cache.Contains("b"));
  cache.Put("big", FakeModel(500));  // Oversized alone: still resident.
  EXPECT_TRUE(cache.Contains("big"));
  EXPECT_EQ(cache.GetStats().entries, 1);
}

TEST(ModelCacheTest, EvictionKeepsOutstandingReadersValid) {
  ModelCacheOptions opt;
  opt.max_entries = 1;
  ModelCache cache(opt);
  cache.Put("a", FakeModel(123));
  std::shared_ptr<const CachedModel> held = cache.Get("a");
  ASSERT_NE(held, nullptr);
  cache.Put("b", FakeModel(8));  // Evicts "a".
  EXPECT_FALSE(cache.Contains("a"));
  // The held snapshot stays a valid immutable view (ASan pins this).
  EXPECT_EQ(held->bytes, 123u);
}

// --- PoolPartitionLease -------------------------------------------------

TEST(PoolPartitionLeaseTest, LeasesRaiseEffectivePartitions) {
  ASSERT_EQ(ActivePoolLeases(), 0);
  const int manual = PoolPartitions();
  {
    PoolPartitionLease a;
    PoolPartitionLease b;
    EXPECT_EQ(ActivePoolLeases(), 2);
    EXPECT_GE(PoolPartitions(), 2);  // max(manual, active leases).
  }
  EXPECT_EQ(ActivePoolLeases(), 0);
  EXPECT_EQ(PoolPartitions(), manual);
}

// --- DecompositionServer ------------------------------------------------

TEST(ServerTest, SolveProducesModelAndCachesIt) {
  ServerOptions opt;
  opt.num_workers = 1;
  DecompositionServer server(opt);
  auto tensor = SmallTensor();

  Result<JobResult> first = server.Solve(Req(tensor, "solve"));
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(first.value().status.ok());
  ASSERT_NE(first.value().model, nullptr);
  EXPECT_FALSE(first.value().from_cache);
  EXPECT_GT(first.value().model->bytes, 0u);

  Result<JobResult> second = server.Solve(Req(tensor, "solve"));
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second.value().from_cache);
  // Cache hit = the same shared snapshot, not a re-run.
  EXPECT_EQ(second.value().model, first.value().model);

  const ServerStats stats = server.Stats();
  EXPECT_EQ(stats.submitted, 2u);
  EXPECT_EQ(stats.executed, 1u);
  EXPECT_EQ(stats.served_from_cache, 1u);
  EXPECT_EQ(stats.completed, 2u);
}

TEST(ServerTest, WaitReapsAndUnknownIdsAreRejected) {
  ServerOptions opt;
  opt.num_workers = 1;
  DecompositionServer server(opt);
  Result<JobId> id = server.Submit(Req(SmallTensor(), "reap"));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(server.Wait(id.value()).ok());
  EXPECT_EQ(server.Wait(id.value()).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(server.Cancel(9999).code(), StatusCode::kInvalidArgument);
}

TEST(ServerTest, FullQueueRejectsWithResourceExhausted) {
  std::promise<void> release;
  std::shared_future<void> gate(release.get_future());
  std::atomic<int> begun{0};

  ServerOptions opt;
  opt.num_workers = 1;
  opt.queue_capacity = 2;
  opt.job_begin_hook = [&](const SolveRequest& r) {
    begun.fetch_add(1);
    if (r.model.dataset_id == "blocker") gate.wait();
  };
  DecompositionServer server(opt);
  auto tensor = SmallTensor();

  Result<JobId> blocker = server.Submit(Req(tensor, "blocker"));
  ASSERT_TRUE(blocker.ok());
  WaitForCount(begun, 1);  // Worker is parked inside the hook.

  Result<JobId> q1 = server.Submit(Req(tensor, "q1"));
  Result<JobId> q2 = server.Submit(Req(tensor, "q2"));
  ASSERT_TRUE(q1.ok());
  ASSERT_TRUE(q2.ok());
  Result<JobId> q3 = server.Submit(Req(tensor, "q3"));
  ASSERT_FALSE(q3.ok());
  EXPECT_EQ(q3.status().code(), StatusCode::kResourceExhausted);

  ServerStats stats = server.Stats();
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.submitted, 3u);
  EXPECT_EQ(stats.queue_depth, 2);

  release.set_value();
  EXPECT_TRUE(server.Wait(blocker.value()).ok());
  EXPECT_TRUE(server.Wait(q1.value()).ok());
  EXPECT_TRUE(server.Wait(q2.value()).ok());
  // Admission works again once the backlog drained.
  EXPECT_TRUE(server.Solve(Req(tensor, "q4")).ok());
}

TEST(ServerTest, DeadlineExpiredInQueueCompletesWithoutRunning) {
  std::promise<void> release;
  std::shared_future<void> gate(release.get_future());
  std::atomic<int> begun{0};

  ServerOptions opt;
  opt.num_workers = 1;
  opt.job_begin_hook = [&](const SolveRequest& r) {
    begun.fetch_add(1);
    if (r.model.dataset_id == "blocker") gate.wait();
  };
  DecompositionServer server(opt);
  auto tensor = SmallTensor();

  Result<JobId> blocker = server.Submit(Req(tensor, "blocker"));
  ASSERT_TRUE(blocker.ok());
  WaitForCount(begun, 1);

  SolveRequest doomed = Req(tensor, "doomed");
  doomed.deadline_seconds = 0.02;  // Will expire during the queue wait.
  Result<JobId> id = server.Submit(std::move(doomed));
  ASSERT_TRUE(id.ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  release.set_value();

  Result<JobResult> result = server.Wait(id.value());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(result.value().model, nullptr);  // Never ran.
  ASSERT_TRUE(server.Wait(blocker.value()).ok());

  const ServerStats stats = server.Stats();
  EXPECT_EQ(stats.executed, 1u);  // Only the blocker ran.
  EXPECT_EQ(stats.deadline_exceeded, 1u);
  EXPECT_EQ(stats.submitted, 2u);
  EXPECT_EQ(stats.completed, 2u);
}

TEST(ServerTest, CancelQueuedJobCompletesWithCancelled) {
  std::promise<void> release;
  std::shared_future<void> gate(release.get_future());
  std::atomic<int> begun{0};

  ServerOptions opt;
  opt.num_workers = 1;
  opt.job_begin_hook = [&](const SolveRequest& r) {
    begun.fetch_add(1);
    if (r.model.dataset_id == "blocker") gate.wait();
  };
  DecompositionServer server(opt);
  auto tensor = SmallTensor();

  Result<JobId> blocker = server.Submit(Req(tensor, "blocker"));
  ASSERT_TRUE(blocker.ok());
  WaitForCount(begun, 1);

  Result<JobId> victim = server.Submit(Req(tensor, "victim"));
  ASSERT_TRUE(victim.ok());
  ASSERT_TRUE(server.Cancel(victim.value()).ok());
  release.set_value();

  Result<JobResult> result = server.Wait(victim.value());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().status.code(), StatusCode::kCancelled);
  ASSERT_TRUE(server.Wait(blocker.value()).ok());
  const ServerStats stats = server.Stats();
  EXPECT_EQ(stats.cancelled, 1u);
  EXPECT_EQ(stats.executed, 1u);
}

TEST(ServerTest, IdenticalConcurrentSolvesRunOnce) {
  std::promise<void> release;
  std::shared_future<void> gate(release.get_future());
  std::atomic<int> begun{0};

  ServerOptions opt;
  opt.num_workers = 2;
  opt.job_begin_hook = [&](const SolveRequest&) {
    begun.fetch_add(1);
    gate.wait();
  };
  DecompositionServer server(opt);
  auto tensor = SmallTensor();

  // Leader enters the worker and parks; four identical Submits attach as
  // followers (no queue slots, no extra runs).
  Result<JobId> leader = server.Submit(Req(tensor, "shared"));
  ASSERT_TRUE(leader.ok());
  WaitForCount(begun, 1);
  std::vector<JobId> followers;
  for (int i = 0; i < 4; ++i) {
    Result<JobId> id = server.Submit(Req(tensor, "shared"));
    ASSERT_TRUE(id.ok());
    followers.push_back(id.value());
  }
  EXPECT_EQ(server.Stats().queue_depth, 0);
  release.set_value();

  Result<JobResult> lead_result = server.Wait(leader.value());
  ASSERT_TRUE(lead_result.ok());
  ASSERT_TRUE(lead_result.value().status.ok());
  EXPECT_FALSE(lead_result.value().deduplicated);
  for (JobId id : followers) {
    Result<JobResult> r = server.Wait(id);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r.value().deduplicated);
    // Same shared snapshot => bitwise-identical factors, trivially.
    EXPECT_EQ(r.value().model, lead_result.value().model);
  }
  const ServerStats stats = server.Stats();
  EXPECT_EQ(stats.submitted, 5u);
  EXPECT_EQ(stats.executed, 1u);  // Single flight.
  EXPECT_EQ(stats.dedup_followers, 4u);
  EXPECT_EQ(stats.completed, 5u);
}

TEST(ServerTest, CacheEvictionKeepsHeldModelsValid) {
  ServerOptions opt;
  opt.num_workers = 1;
  opt.cache.max_entries = 1;
  DecompositionServer server(opt);
  auto tensor = SmallTensor();

  ASSERT_TRUE(server.Solve(Req(tensor, "first")).ok());
  Result<std::shared_ptr<const CachedModel>> held =
      server.GetModel(Spec("first"));
  ASSERT_TRUE(held.ok());

  ASSERT_TRUE(server.Solve(Req(tensor, "second")).ok());  // Evicts "first".
  EXPECT_EQ(server.GetModel(Spec("first")).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_TRUE(server.GetModel(Spec("second")).ok());
  // The held model survives its own eviction.
  EXPECT_EQ(held.value()->decomposition.core.dim(0), 3);
  EXPECT_GT(held.value()->bytes, 0u);
}

TEST(ServerTest, QueriesRequireResidentModel) {
  ServerOptions opt;
  opt.num_workers = 1;
  DecompositionServer server(opt);
  ElementQueryRequest req;
  req.indices = {{0, 0, 0}};
  EXPECT_EQ(server.QueryElement(Spec("absent"), req).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(ServerTest, QueriesMatchFullReconstructionBitwise) {
  ServerOptions opt;
  opt.num_workers = 1;
  DecompositionServer server(opt);
  auto tensor = SmallTensor();
  const ModelSpec spec = Spec("query");
  ASSERT_TRUE(server.Solve(Req(tensor, "query")).ok());

  Result<std::shared_ptr<const CachedModel>> model = server.GetModel(spec);
  ASSERT_TRUE(model.ok());
  const Tensor full = model.value()->decomposition.Reconstruct();

  // Elements.
  ElementQueryRequest ereq;
  for (Index i = 0; i < 12; i += 5) {
    for (Index j = 0; j < 10; j += 4) {
      for (Index k = 0; k < 8; k += 3) {
        ereq.indices.push_back({i, j, k});
      }
    }
  }
  Result<ElementQueryResponse> eresp = server.QueryElement(spec, ereq);
  ASSERT_TRUE(eresp.ok());
  ASSERT_EQ(eresp.value().values.size(), ereq.indices.size());
  for (std::size_t q = 0; q < ereq.indices.size(); ++q) {
    const auto& idx = ereq.indices[q];
    EXPECT_TRUE(BitEq(eresp.value().values[q], full(idx[0], idx[1], idx[2])))
        << "element " << q;
  }

  // Mode-1 fibers.
  FiberQueryRequest freq;
  freq.mode = 1;
  freq.anchors = {{0, 0, 0}, {11, 0, 7}, {5, 0, 2}};
  Result<FiberQueryResponse> fresp = server.QueryFiber(spec, freq);
  ASSERT_TRUE(fresp.ok());
  ASSERT_EQ(fresp.value().fibers.size(), freq.anchors.size());
  for (std::size_t a = 0; a < freq.anchors.size(); ++a) {
    ASSERT_EQ(fresp.value().fibers[a].size(), 10u);
    for (Index j = 0; j < 10; ++j) {
      EXPECT_TRUE(BitEq(fresp.value().fibers[a][j],
                        full(freq.anchors[a][0], j, freq.anchors[a][2])))
          << "fiber " << a << " at " << j;
    }
  }

  // Frontal slices.
  SliceQueryRequest sreq;
  sreq.slices = {0, 3, 7};
  Result<SliceQueryResponse> sresp = server.QuerySlice(spec, sreq);
  ASSERT_TRUE(sresp.ok());
  ASSERT_EQ(sresp.value().slices.size(), sreq.slices.size());
  for (std::size_t s = 0; s < sreq.slices.size(); ++s) {
    const Matrix& got = sresp.value().slices[s];
    const Matrix want = full.FrontalSlice(sreq.slices[s]);
    ASSERT_EQ(got.rows(), want.rows());
    ASSERT_EQ(got.cols(), want.cols());
    for (Index i = 0; i < got.rows(); ++i) {
      for (Index j = 0; j < got.cols(); ++j) {
        EXPECT_TRUE(BitEq(got(i, j), want(i, j)))
            << "slice " << s << " at (" << i << "," << j << ")";
      }
    }
  }
}

TEST(ServerTest, ConcurrentMixedLoadCompletesEverything) {
  ServerOptions opt;
  opt.num_workers = 3;
  opt.queue_capacity = 64;
  DecompositionServer server(opt);
  auto tensor = SmallTensor();

  // Several client threads hammering a handful of distinct models: every
  // job must complete OK and repeated models must not rerun the Engine
  // more than once each (single-flight + cache).
  std::vector<std::thread> clients;
  std::atomic<int> failures{0};
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&server, &tensor, &failures, c] {
      for (int i = 0; i < 6; ++i) {
        const std::string id = "mix" + std::to_string((c + i) % 3);
        Result<JobResult> r = server.Solve(Req(tensor, id));
        if (!r.ok() || !r.value().status.ok() ||
            r.value().model == nullptr) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  const ServerStats stats = server.Stats();
  EXPECT_EQ(stats.submitted, 24u);
  EXPECT_EQ(stats.completed, 24u);
  EXPECT_LE(stats.executed, 3u);  // At most one run per distinct model.
}

TEST(ServerTest, ShutdownWithParkedWorkerDoesNotHang) {
  std::promise<void> release;
  std::shared_future<void> gate(release.get_future());
  std::atomic<int> begun{0};
  auto tensor = SmallTensor();
  {
    ServerOptions opt;
    opt.num_workers = 1;
    opt.job_begin_hook = [&](const SolveRequest&) {
      begun.fetch_add(1);
      gate.wait();
    };
    DecompositionServer server(opt);
    ASSERT_TRUE(server.Submit(Req(tensor, "parked")).ok());
    ASSERT_TRUE(server.Submit(Req(tensor, "queued")).ok());
    WaitForCount(begun, 1);
    std::thread releaser([&release] {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      release.set_value();
    });
    // Destructor: cancels both jobs, drains the queue, joins the worker.
    releaser.detach();
  }
  SUCCEED();
}

// --- Engine per-call context override -----------------------------------

TEST(EnginePerCallContextTest, OverrideDoesNotLeakBetweenJobs) {
  EngineOptions opt;
  opt.method_options.tucker.ranks = {3, 3, 3};
  opt.method_options.tucker.max_iterations = 3;
  opt.measure_error = false;
  Engine engine(opt);
  const Tensor x = MakeLowRankTensor({12, 10, 8}, {3, 3, 3}, 0.1, 1);

  // Job 1 brings a pre-cancelled context: interrupted before any usable
  // state exists, so the Result itself is the cancellation error.
  RunContext cancelled;
  cancelled.RequestCancel();
  Result<EngineRun> r1 = engine.Solve(x, &cancelled);
  ASSERT_FALSE(r1.ok());
  EXPECT_EQ(r1.status().code(), StatusCode::kCancelled);

  // Job 2 on the same engine with no override: the previous job's
  // cancellation must not have leaked into engine state.
  Result<EngineRun> r2 = engine.Solve(x, nullptr);
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(r2.value().status.ok());

  // Job 3 with an expired per-call deadline, while the engine-owned
  // context has none: only the override applies.
  RunContext expired;
  expired.SetDeadlineAfter(0.0);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  Result<EngineRun> r3 = engine.Solve(x, &expired);
  if (r3.ok()) {
    EXPECT_EQ(r3.value().status.code(), StatusCode::kDeadlineExceeded);
  } else {
    EXPECT_EQ(r3.status().code(), StatusCode::kDeadlineExceeded);
  }

  // And the engine context still works afterwards.
  Result<EngineRun> r4 = engine.Solve(x);
  ASSERT_TRUE(r4.ok());
  EXPECT_TRUE(r4.value().status.ok());
}

}  // namespace
}  // namespace dtucker
