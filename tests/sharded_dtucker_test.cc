#include "dtucker/sharded_dtucker.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/run_context.h"
#include "data/generators.h"
#include "data/tensor_io.h"
#include "dtucker/engine.h"

namespace dtucker {
namespace {

ShardedDTuckerOptions MakeOptions(std::vector<Index> ranks, int num_ranks,
                                  int iters = 8) {
  ShardedDTuckerOptions opt;
  opt.dtucker.tucker.ranks = std::move(ranks);
  opt.dtucker.tucker.max_iterations = iters;
  opt.num_ranks = num_ranks;
  return opt;
}

void ExpectBitwiseEqual(const TuckerDecomposition& a,
                        const TuckerDecomposition& b, const char* what) {
  ASSERT_EQ(a.factors.size(), b.factors.size()) << what;
  for (std::size_t n = 0; n < a.factors.size(); ++n) {
    ASSERT_EQ(a.factors[n].rows(), b.factors[n].rows()) << what;
    ASSERT_EQ(a.factors[n].cols(), b.factors[n].cols()) << what;
    for (Index i = 0; i < a.factors[n].size(); ++i) {
      ASSERT_EQ(a.factors[n].data()[i], b.factors[n].data()[i])
          << what << ": factor " << n << " element " << i;
    }
  }
  ASSERT_EQ(a.core.shape(), b.core.shape()) << what;
  for (Index i = 0; i < a.core.size(); ++i) {
    ASSERT_EQ(a.core.data()[i], b.core.data()[i])
        << what << ": core element " << i;
  }
}

TEST(ShardedDTuckerTest, ExactRecoveryOfLowRankTensor) {
  // L = 12 frontal slices >= kShardChunkCount, so all power-of-two rank
  // counts share one reduction tree.
  Tensor x = MakeLowRankTensor({16, 14, 12}, {3, 3, 3}, 0.0, 2);
  Result<TuckerDecomposition> dec =
      ShardedDTucker(x, MakeOptions({3, 3, 3}, 2));
  ASSERT_TRUE(dec.ok()) << dec.status().ToString();
  EXPECT_LT(dec.value().RelativeErrorAgainst(x), 1e-12);
}

TEST(ShardedDTuckerTest, BitwiseIdenticalAcrossPowerOfTwoRankCounts) {
  Tensor x = MakeLowRankTensor({15, 13, 9}, {4, 4, 4}, 0.2, 3);
  Result<TuckerDecomposition> one =
      ShardedDTucker(x, MakeOptions({4, 3, 3}, 1));
  ASSERT_TRUE(one.ok()) << one.status().ToString();
  for (int num_ranks : {2, 4, 8}) {
    TuckerStats stats;
    Result<TuckerDecomposition> many =
        ShardedDTucker(x, MakeOptions({4, 3, 3}, num_ranks), &stats);
    ASSERT_TRUE(many.ok()) << many.status().ToString();
    ExpectBitwiseEqual(many.value(), one.value(),
                       ("ranks=" + std::to_string(num_ranks)).c_str());
    EXPECT_EQ(stats.completion, StatusCode::kOk);
  }
}

TEST(ShardedDTuckerTest, FourOrderTensorBitwiseAcrossRankCounts) {
  // Order 4: the slice dimension is the trailing-mode volume 3 * 4 = 12.
  Tensor x = MakeLowRankTensor({10, 9, 3, 4}, {2, 2, 2, 2}, 0.1, 4);
  Result<TuckerDecomposition> one =
      ShardedDTucker(x, MakeOptions({3, 3, 2, 2}, 1));
  ASSERT_TRUE(one.ok()) << one.status().ToString();
  Result<TuckerDecomposition> four =
      ShardedDTucker(x, MakeOptions({3, 3, 2, 2}, 4));
  ASSERT_TRUE(four.ok()) << four.status().ToString();
  ExpectBitwiseEqual(four.value(), one.value(), "order-4 ranks=4");
  EXPECT_LT(four.value().RelativeErrorAgainst(x), 0.2);
}

TEST(ShardedDTuckerTest, AgreesWithUnshardedSolverToRoundingError) {
  // The sharded path uses a different (tree) reduction shape than the
  // legacy left-fold, so bits differ; accuracy must not.
  Tensor x = MakeLowRankTensor({18, 16, 10}, {4, 4, 4}, 0.3, 5);
  ShardedDTuckerOptions opt = MakeOptions({4, 4, 4}, 4, 15);
  Result<TuckerDecomposition> sharded = ShardedDTucker(x, opt);
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
  Result<TuckerDecomposition> legacy = DTucker(x, opt.dtucker);
  ASSERT_TRUE(legacy.ok());
  const double err_s = sharded.value().RelativeErrorAgainst(x);
  const double err_l = legacy.value().RelativeErrorAgainst(x);
  EXPECT_NEAR(err_s, err_l, 1e-6) << "sharded " << err_s << " legacy "
                                  << err_l;
}

TEST(ShardedDTuckerTest, DegenerateShardsStayInLockstep) {
  // 9 ranks over 9 slices with an 8-chunk grid: at least one rank owns
  // zero slices and must still complete every collective.
  Tensor x = MakeLowRankTensor({12, 11, 9}, {3, 3, 3}, 0.1, 6);
  TuckerStats stats;
  ShardedDTuckerOptions opt = MakeOptions({3, 3, 3}, 9);
  opt.comm_timeout_seconds = 10;  // A lockstep bug should fail, not hang.
  Result<TuckerDecomposition> dec = ShardedDTucker(x, opt, &stats);
  ASSERT_TRUE(dec.ok()) << dec.status().ToString();
  EXPECT_EQ(stats.completion, StatusCode::kOk);
  EXPECT_LT(dec.value().RelativeErrorAgainst(x), 0.1);
}

TEST(ShardedDTuckerTest, ValidateRejectsMoreRanksThanSlices) {
  Tensor x = MakeLowRankTensor({8, 7, 4}, {2, 2, 2}, 0.0, 7);
  Result<TuckerDecomposition> dec =
      ShardedDTucker(x, MakeOptions({2, 2, 2}, 5));
  ASSERT_FALSE(dec.ok());
  EXPECT_EQ(dec.status().code(), StatusCode::kInvalidArgument);
}

TEST(ShardedDTuckerTest, ValidateRejectsBadRankCountAndTimeout) {
  Tensor x = MakeLowRankTensor({8, 7, 4}, {2, 2, 2}, 0.0, 7);
  EXPECT_FALSE(ShardedDTucker(x, MakeOptions({2, 2, 2}, 0)).ok());
  ShardedDTuckerOptions opt = MakeOptions({2, 2, 2}, 2);
  opt.comm_timeout_seconds = 0;
  EXPECT_FALSE(ShardedDTucker(x, opt).ok());
}

TEST(ShardedDTuckerTest, FromFileMatchesInMemoryBitwise) {
  Tensor x = MakeLowRankTensor({14, 12, 10}, {3, 3, 3}, 0.2, 8);
  const std::string path = ::testing::TempDir() + "/sharded.dtnsr";
  ASSERT_TRUE(SaveTensor(x, path).ok());
  ShardedDTuckerOptions opt = MakeOptions({3, 3, 3}, 2);
  Result<TuckerDecomposition> mem = ShardedDTucker(x, opt);
  ASSERT_TRUE(mem.ok()) << mem.status().ToString();
  TuckerStats stats;
  Result<TuckerDecomposition> file = ShardedDTuckerFromFile(path, opt, &stats);
  ASSERT_TRUE(file.ok()) << file.status().ToString();
  ExpectBitwiseEqual(file.value(), mem.value(), "from-file");
  // Out-of-core working set: the compressed shard, not the tensor.
  EXPECT_GT(stats.working_bytes, 0u);
  EXPECT_LT(stats.working_bytes, x.ByteSize());
  std::remove(path.c_str());
}

TEST(ShardedDTuckerTest, SpmdEntryMatchesDriver) {
  // Drive the SPMD surface directly: one ShardedDTuckerRank call per rank
  // thread over an explicit group, as a multi-process launcher would.
  Tensor x = MakeLowRankTensor({13, 11, 8}, {3, 3, 3}, 0.15, 9);
  ShardedDTuckerOptions opt = MakeOptions({3, 3, 2}, 2);
  Result<TuckerDecomposition> driver = ShardedDTucker(x, opt);
  ASSERT_TRUE(driver.ok()) << driver.status().ToString();

  auto group = InProcessGroup::Create(2);
  std::vector<Result<TuckerDecomposition>> results;
  results.emplace_back(Status::InvalidArgument("unset"));
  results.emplace_back(Status::InvalidArgument("unset"));
  std::thread peer([&] {
    results[1] = ShardedDTuckerRank(x, opt.dtucker, group->comm(1));
  });
  results[0] = ShardedDTuckerRank(x, opt.dtucker, group->comm(0));
  peer.join();
  for (int r = 0; r < 2; ++r) {
    ASSERT_TRUE(results[r].ok()) << "rank " << r << ": "
                                 << results[r].status().ToString();
    // Every rank exits with the full, identical decomposition.
    ExpectBitwiseEqual(results[r].value(), driver.value(),
                       ("spmd rank " + std::to_string(r)).c_str());
  }
}

TEST(ShardedDTuckerTest, CancelBeforeStartFailsCleanly) {
  Tensor x = MakeLowRankTensor({12, 10, 8}, {3, 3, 3}, 0.1, 10);
  RunContext ctx;
  ctx.RequestCancel();
  ShardedDTuckerOptions opt = MakeOptions({3, 3, 3}, 2);
  opt.dtucker.tucker.run_context = &ctx;
  Result<TuckerDecomposition> dec = ShardedDTucker(x, opt);
  // No usable state exists yet: the run surfaces as an error, on every
  // rank, without deadlocking the group.
  ASSERT_FALSE(dec.ok());
  EXPECT_EQ(dec.status().code(), StatusCode::kCancelled);
}

TEST(ShardedDTuckerTest, MidRunCancelReturnsLastCompletedSweep) {
  Tensor x = MakeLowRankTensor({15, 13, 9}, {4, 4, 4}, 0.3, 11);
  RunContext ctx;
  ShardedDTuckerOptions opt = MakeOptions({4, 4, 4}, 2, 20);
  opt.dtucker.tucker.tolerance = 0;  // Never converge; only the cancel stops it.
  opt.dtucker.tucker.run_context = &ctx;
  opt.dtucker.sweep_callback = [&](const SweepTelemetry& t) {
    if (t.sweep >= 2) ctx.RequestCancel();
  };
  TuckerStats stats;
  Result<TuckerDecomposition> dec = ShardedDTucker(x, opt, &stats);
  // Best-so-far semantics: a valid decomposition plus a kCancelled
  // completion code, agreed at a sweep boundary by both ranks.
  ASSERT_TRUE(dec.ok()) << dec.status().ToString();
  EXPECT_EQ(stats.completion, StatusCode::kCancelled);
  EXPECT_FALSE(stats.completion_detail.empty());
  EXPECT_GE(stats.iterations, 2);
  EXPECT_LT(stats.iterations, 20);
  EXPECT_LT(dec.value().RelativeErrorAgainst(x), 0.5);
}

TEST(ShardedDTuckerTest, RejectsAutoReorder) {
  Tensor x = MakeLowRankTensor({12, 10, 8}, {3, 3, 3}, 0.1, 12);
  ShardedDTuckerOptions opt = MakeOptions({3, 3, 3}, 2);
  opt.dtucker.auto_reorder = true;
  Result<TuckerDecomposition> dec = ShardedDTucker(x, opt);
  ASSERT_FALSE(dec.ok());
  EXPECT_EQ(dec.status().code(), StatusCode::kInvalidArgument);
}

TEST(ShardedDTuckerTest, BitwiseIdenticalAcrossAllThreeTransports) {
  // The tri-transport contract end-to-end: a full sharded solve produces
  // the same bits whether the ranks exchange buffers through in-process
  // mailboxes, a shared directory, or a shm segment — and each transport
  // also reproduces the 1-rank run (power-of-two rank counts).
  Tensor x = MakeLowRankTensor({15, 13, 9}, {4, 4, 4}, 0.2, 3);
  Result<TuckerDecomposition> one =
      ShardedDTucker(x, MakeOptions({4, 3, 3}, 1));
  ASSERT_TRUE(one.ok()) << one.status().ToString();
  for (CommTransport transport : {CommTransport::kInProcess,
                                  CommTransport::kFile, CommTransport::kShm}) {
    for (int num_ranks : {2, 4}) {
      ShardedDTuckerOptions opt = MakeOptions({4, 3, 3}, num_ranks);
      opt.transport = transport;
      Result<TuckerDecomposition> dec = ShardedDTucker(x, opt);
      ASSERT_TRUE(dec.ok()) << CommTransportName(transport) << ": "
                            << dec.status().ToString();
      ExpectBitwiseEqual(dec.value(), one.value(),
                         (std::string(CommTransportName(transport)) +
                          " ranks=" + std::to_string(num_ranks))
                             .c_str());
    }
  }
}

TEST(ShardedDTuckerTest, NonPowerOfTwoRankCountsMatchFitTo4Digits) {
  // Non-power-of-two counts use a different composed reduction tree, so
  // bitwise identity is NOT guaranteed (DESIGN.md §11); the fit must still
  // agree with the 1-rank run to 4 significant digits.
  Tensor x = MakeLowRankTensor({18, 16, 12}, {4, 4, 4}, 0.25, 21);
  Result<TuckerDecomposition> one =
      ShardedDTucker(x, MakeOptions({4, 4, 4}, 1));
  ASSERT_TRUE(one.ok()) << one.status().ToString();
  const double fit_one =
      1.0 - std::sqrt(one.value().RelativeErrorAgainst(x));
  for (int num_ranks : {3, 5, 6}) {
    Result<TuckerDecomposition> many =
        ShardedDTucker(x, MakeOptions({4, 4, 4}, num_ranks));
    ASSERT_TRUE(many.ok()) << many.status().ToString();
    const double fit =
        1.0 - std::sqrt(many.value().RelativeErrorAgainst(x));
    EXPECT_LE(std::fabs(fit - fit_one), 1e-4 * std::fabs(fit_one))
        << "ranks=" << num_ranks << " fit " << fit << " vs " << fit_one;
  }
}

TEST(ShardedDTuckerTest, ReplicatedTrailingFallbackStaysBitwise) {
  // shard_trailing_updates = false restores the replicated gathered-Z
  // trailing updates (the benchmark baseline); it must keep the
  // cross-rank-count bitwise identity on its own reduction shape.
  Tensor x = MakeLowRankTensor({15, 13, 9}, {4, 4, 4}, 0.2, 3);
  std::vector<TuckerDecomposition> runs;
  for (int num_ranks : {1, 2, 4}) {
    ShardedDTuckerOptions opt = MakeOptions({4, 3, 3}, num_ranks);
    opt.dtucker.shard_trailing_updates = false;
    Result<TuckerDecomposition> dec = ShardedDTucker(x, opt);
    ASSERT_TRUE(dec.ok()) << dec.status().ToString();
    runs.push_back(std::move(dec).ValueOrDie());
  }
  ExpectBitwiseEqual(runs[1], runs[0], "replicated-trailing ranks 2 vs 1");
  ExpectBitwiseEqual(runs[2], runs[0], "replicated-trailing ranks 4 vs 1");
}

TEST(ShardedDTuckerTest, ShardedAndReplicatedTrailingAgreeOnAccuracy) {
  // The sharded trailing update recovers the factor through a different
  // factorization (small-side Gram + QR instead of the long-side eig), so
  // bits differ between the two variants; the converged accuracy must not.
  Tensor x = MakeLowRankTensor({18, 16, 10}, {4, 4, 4}, 0.3, 5);
  double errs[2];
  int i = 0;
  for (bool shard_trailing : {true, false}) {
    ShardedDTuckerOptions opt = MakeOptions({4, 4, 4}, 4, 15);
    opt.dtucker.shard_trailing_updates = shard_trailing;
    Result<TuckerDecomposition> dec = ShardedDTucker(x, opt);
    ASSERT_TRUE(dec.ok()) << dec.status().ToString();
    errs[i++] = dec.value().RelativeErrorAgainst(x);
  }
  EXPECT_NEAR(errs[0], errs[1], 1e-6)
      << "sharded " << errs[0] << " replicated " << errs[1];
}

TEST(ShardedDTuckerTest, OversizedTrailingRankFallsBackAndStaysBitwise) {
  // ranks[2] > ranks[0] * ranks[1] makes the small-side Gram ineligible;
  // the solver must take the gathered-Z fallback on every rank in lockstep
  // and keep the power-of-two identity.
  Tensor x = MakeLowRankTensor({16, 14, 12}, {2, 2, 5}, 0.15, 17);
  Result<TuckerDecomposition> one =
      ShardedDTucker(x, MakeOptions({2, 2, 5}, 1));
  ASSERT_TRUE(one.ok()) << one.status().ToString();
  Result<TuckerDecomposition> four =
      ShardedDTucker(x, MakeOptions({2, 2, 5}, 4));
  ASSERT_TRUE(four.ok()) << four.status().ToString();
  ExpectBitwiseEqual(four.value(), one.value(), "oversized-trailing ranks=4");
}

TEST(ShardedEngineTest, SolveRoutesThroughShardedPath) {
  Tensor x = MakeLowRankTensor({14, 12, 9}, {3, 3, 3}, 0.2, 13);
  EngineRun runs[2];
  int num_ranks[2] = {1, 4};
  for (int i = 0; i < 2; ++i) {
    EngineOptions eopt;
    eopt.num_ranks = num_ranks[i];
    eopt.method_options.tucker.ranks = {3, 3, 3};
    eopt.method_options.tucker.max_iterations = 6;
    Engine engine(std::move(eopt));
    Result<EngineRun> run = engine.Solve(x);
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    ASSERT_TRUE(run.value().status.ok());
    runs[i] = std::move(run).ValueOrDie();
  }
  ExpectBitwiseEqual(runs[0].decomposition, runs[1].decomposition,
                     "engine ranks 1 vs 4");
  EXPECT_EQ(runs[0].relative_error, runs[1].relative_error);
  EXPECT_GT(runs[0].stored_bytes, 0u);
}

TEST(ShardedEngineTest, NumRanksRequiresDTucker) {
  EngineOptions eopt;
  eopt.method = TuckerMethod::kTuckerAls;
  eopt.num_ranks = 2;
  eopt.method_options.tucker.ranks = {2, 2, 2};
  Engine engine(std::move(eopt));
  Tensor x = MakeLowRankTensor({8, 7, 6}, {2, 2, 2}, 0.0, 14);
  Result<EngineRun> run = engine.Solve(x);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kInvalidArgument);
}

TEST(ShardedEngineTest, SolveFileRoutesThroughShardedPath) {
  Tensor x = MakeLowRankTensor({12, 11, 10}, {3, 3, 3}, 0.1, 15);
  const std::string path = ::testing::TempDir() + "/sharded_engine.dtnsr";
  ASSERT_TRUE(SaveTensor(x, path).ok());
  EngineOptions eopt;
  eopt.num_ranks = 2;
  eopt.method_options.tucker.ranks = {3, 3, 3};
  eopt.method_options.tucker.max_iterations = 6;
  Engine engine(std::move(eopt));
  Result<EngineRun> run = engine.SolveFile(path);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  ASSERT_TRUE(run.value().status.ok());
  EXPECT_LT(run.value().relative_error, 0.1);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dtucker
