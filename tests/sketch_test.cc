#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "linalg/blas.h"
#include "linalg/cholesky.h"
#include "sketch/count_sketch.h"
#include "sketch/tensor_sketch.h"
#include "tensor/tensor_ops.h"

namespace dtucker {
namespace {

TEST(CountSketchTest, PreservesColumnNorm) {
  // CountSketch is an exact isometry per column in expectation; each bucket
  // collects signed entries, so the total mass (sum of signed values) is
  // preserved exactly when buckets do not collide for a 1-sparse vector.
  CountSketch cs(100, 64, 1);
  Matrix e(100, 1);
  e(42, 0) = 3.0;
  Matrix s = cs.Apply(e);
  EXPECT_NEAR(s.FrobeniusNorm(), 3.0, 1e-12);
}

TEST(CountSketchTest, InnerProductUnbiasedOverSeeds) {
  // Average of sketched inner products over many independent sketches
  // converges to the true inner product.
  Rng rng(2);
  Matrix x = Matrix::GaussianRandom(50, 1, rng);
  Matrix y = Matrix::GaussianRandom(50, 1, rng);
  const double truth = Dot(x.data(), y.data(), 50);
  // Var per trial ~ ||x||^2 ||y||^2 / m; the mean of `trials` independent
  // sketches concentrates accordingly. Allow 4 standard errors.
  const Index m = 64;
  const int trials = 800;
  double acc = 0;
  for (int t = 0; t < trials; ++t) {
    CountSketch cs(50, m, 1000 + t);
    Matrix sx = cs.Apply(x);
    Matrix sy = cs.Apply(y);
    acc += Dot(sx.data(), sy.data(), m);
  }
  acc /= trials;
  const double stderr_bound =
      4.0 * x.FrobeniusNorm() * y.FrobeniusNorm() /
      std::sqrt(static_cast<double>(m) * trials);
  EXPECT_NEAR(acc, truth, stderr_bound);
}

TEST(CountSketchTest, DeterministicInSeed) {
  Rng rng(3);
  Matrix x = Matrix::GaussianRandom(30, 2, rng);
  CountSketch a(30, 8, 7), b(30, 8, 7), c(30, 8, 8);
  EXPECT_TRUE(AlmostEqual(a.Apply(x), b.Apply(x), 0.0));
  EXPECT_FALSE(AlmostEqual(a.Apply(x), c.Apply(x), 1e-12));
}

TEST(TensorSketchTest, KroneckerFastPathMatchesExplicit) {
  // The FFT fast path and the explicit hash-walk must produce the SAME
  // sketch (not just statistically similar) since they share hashes.
  Rng rng(4);
  Matrix a = Matrix::GaussianRandom(6, 2, rng);
  Matrix b = Matrix::GaussianRandom(5, 3, rng);
  Matrix c = Matrix::GaussianRandom(4, 2, rng);
  TensorSketch ts({6, 5, 4}, 32, 11);

  Matrix fast = ts.SketchKronecker({&a, &b, &c});
  // Explicit: build Kron(c (x) b (x) a) whose columns have factor-0 column
  // fastest, rows have mode-0 fastest.
  Matrix kron = Kronecker(Kronecker(c, b), a);
  Matrix slow = ts.SketchExplicit(kron);
  EXPECT_TRUE(AlmostEqual(fast, slow, 1e-8));
}

TEST(TensorSketchTest, SketchPreservesInnerProductsApproximately) {
  Rng rng(5);
  const Index m = 512;
  TensorSketch ts({8, 7, 6}, m, 13);
  Matrix x = Matrix::GaussianRandom(8 * 7 * 6, 1, rng);
  Matrix y = Matrix::GaussianRandom(8 * 7 * 6, 1, rng);
  const double truth = Dot(x.data(), y.data(), x.rows());
  Matrix sx = ts.SketchExplicit(x);
  Matrix sy = ts.SketchExplicit(y);
  const double est = Dot(sx.data(), sy.data(), m);
  // Norms are ~sqrt(336) ~ 18; allow a few standard deviations.
  EXPECT_NEAR(est, truth, 0.25 * x.FrobeniusNorm() * y.FrobeniusNorm());
}

TEST(TensorSketchTest, UnfoldingSketchMatchesExplicitUnfolding) {
  Rng rng(6);
  Tensor x = Tensor::GaussianRandom({5, 4, 3, 2}, rng);
  for (Index mode = 0; mode < 4; ++mode) {
    std::vector<Index> dims;
    for (Index k = 0; k < 4; ++k) {
      if (k != mode) dims.push_back(x.dim(k));
    }
    TensorSketch ts(dims, 16, 21 + mode);
    Matrix direct = ts.SketchUnfoldingTransposed(x, mode);
    Matrix explicit_unf = ts.SketchExplicit(Unfold(x, mode).Transposed());
    EXPECT_TRUE(AlmostEqual(direct, explicit_unf, 1e-9)) << "mode " << mode;
  }
}

TEST(TensorSketchTest, SketchedLeastSquaresRecoversPlantedSolution) {
  // End-to-end: solve min_w ||K w - K w*|| in sketch space where K is a
  // Kronecker-structured design — the Tucker-ts inner problem.
  Rng rng(7);
  Matrix a = Matrix::GaussianRandom(12, 3, rng);
  Matrix b = Matrix::GaussianRandom(10, 3, rng);
  Matrix w_true = Matrix::GaussianRandom(9, 1, rng);
  Matrix kron = Kronecker(b, a);  // 120 x 9, rows mode-0 fastest.
  Matrix rhs = Multiply(kron, w_true);

  TensorSketch ts({12, 10}, 128, 31);
  Matrix sk = ts.SketchKronecker({&a, &b});
  Matrix srhs = ts.SketchExplicit(rhs);
  // Normal equations in sketch space.
  Matrix g = Gram(sk);
  Matrix rhs2 = MultiplyTN(sk, srhs);
  // Solve with plain Gaussian elimination via LU in linalg.
  Result<Matrix> w = SolveSpd(g, rhs2);
  ASSERT_TRUE(w.ok());
  EXPECT_TRUE(AlmostEqual(w.value(), w_true, 1e-6));
}

TEST(TensorSketchTest, NonPowerOfTwoSketchDim) {
  // Exercises the Bluestein FFT path.
  Rng rng(8);
  Matrix a = Matrix::GaussianRandom(7, 2, rng);
  Matrix b = Matrix::GaussianRandom(6, 2, rng);
  TensorSketch ts({7, 6}, 23, 41);
  Matrix fast = ts.SketchKronecker({&a, &b});
  Matrix slow = ts.SketchExplicit(Kronecker(b, a));
  EXPECT_TRUE(AlmostEqual(fast, slow, 1e-8));
}

}  // namespace
}  // namespace dtucker
