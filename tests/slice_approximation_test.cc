#include "dtucker/slice_approximation.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/generators.h"
#include "dtucker/dtucker.h"
#include "linalg/blas.h"

namespace dtucker {
namespace {

TEST(SliceApproximationTest, RejectsMatrices) {
  Tensor x({5, 5});
  SliceApproximationOptions opt;
  EXPECT_FALSE(ApproximateSlices(x, opt).ok());
}

TEST(SliceApproximationTest, RejectsBadSliceRank) {
  Rng rng(1);
  Tensor x = Tensor::GaussianRandom({6, 5, 4}, rng);
  SliceApproximationOptions opt;
  opt.slice_rank = 0;
  EXPECT_FALSE(ApproximateSlices(x, opt).ok());
  opt.slice_rank = 6;  // > min(6,5).
  EXPECT_FALSE(ApproximateSlices(x, opt).ok());
  opt.slice_rank = 5;
  EXPECT_TRUE(ApproximateSlices(x, opt).ok());
}

TEST(SliceApproximationTest, ExactForLowRankSlices) {
  // Each slice has rank <= 3 when the tensor has Tucker rank (3,3,*).
  Tensor x = MakeLowRankTensor({20, 15, 10}, {3, 3, 3}, 0.0, 2);
  SliceApproximationOptions opt;
  opt.slice_rank = 3;
  Result<SliceApproximation> approx = ApproximateSlices(x, opt);
  ASSERT_TRUE(approx.ok());
  EXPECT_EQ(approx.value().NumSlices(), 10);
  EXPECT_LT(approx.value().RelativeErrorAgainst(x), 1e-16);
}

TEST(SliceApproximationTest, SliceFactorsAreOrthonormalAndSorted) {
  Tensor x = MakeLowRankTensor({18, 14, 6}, {4, 4, 4}, 0.1, 3);
  SliceApproximationOptions opt;
  opt.slice_rank = 4;
  Result<SliceApproximation> approx = ApproximateSlices(x, opt);
  ASSERT_TRUE(approx.ok());
  for (const auto& sl : approx.value().slices) {
    EXPECT_TRUE(AlmostEqual(MultiplyTN(sl.u, sl.u), Matrix::Identity(4),
                            1e-9));
    EXPECT_TRUE(AlmostEqual(MultiplyTN(sl.v, sl.v), Matrix::Identity(4),
                            1e-9));
    for (std::size_t i = 0; i + 1 < sl.s.size(); ++i) {
      EXPECT_GE(sl.s[i], sl.s[i + 1]);
    }
  }
}

TEST(SliceApproximationTest, CompressionByteSize) {
  Tensor x = MakeLowRankTensor({40, 30, 20}, {5, 5, 5}, 0.05, 4);
  SliceApproximationOptions opt;
  opt.slice_rank = 5;
  Result<SliceApproximation> approx = ApproximateSlices(x, opt);
  ASSERT_TRUE(approx.ok());
  // (I1 + I2 + 1) * Js * L doubles.
  const std::size_t expected = (40 + 30 + 1) * 5 * 20 * sizeof(double);
  EXPECT_EQ(approx.value().ByteSize(), expected);
  EXPECT_LT(approx.value().ByteSize(), x.ByteSize());
}

TEST(SliceApproximationTest, FourOrderSliceGrid) {
  Tensor x = MakeLowRankTensor({10, 9, 3, 4}, {2, 2, 2, 2}, 0.0, 5);
  SliceApproximationOptions opt;
  opt.slice_rank = 2;
  Result<SliceApproximation> approx = ApproximateSlices(x, opt);
  ASSERT_TRUE(approx.ok());
  EXPECT_EQ(approx.value().NumSlices(), 12);
  EXPECT_EQ(approx.value().TrailingShape(), (std::vector<Index>{3, 4}));
  EXPECT_LT(approx.value().RelativeErrorAgainst(x), 1e-16);
}

TEST(SliceApproximationTest, SliceRangeMatchesFullRun) {
  Tensor x = MakeLowRankTensor({12, 10, 8}, {3, 3, 3}, 0.1, 6);
  SliceApproximationOptions opt;
  opt.slice_rank = 3;
  Result<SliceApproximation> full = ApproximateSlices(x, opt);
  ASSERT_TRUE(full.ok());
  Result<std::vector<SliceSvd>> range = ApproximateSliceRange(x, 2, 3, opt);
  ASSERT_TRUE(range.ok());
  ASSERT_EQ(range.value().size(), 3u);
  for (int k = 0; k < 3; ++k) {
    EXPECT_TRUE(AlmostEqual(
        range.value()[static_cast<std::size_t>(k)].Reconstruct(),
        full.value().slices[static_cast<std::size_t>(k + 2)].Reconstruct(),
        1e-12));
  }
}

TEST(SliceApproximationTest, SliceRangeBoundsChecked) {
  Rng rng(7);
  Tensor x = Tensor::GaussianRandom({6, 6, 4}, rng);
  SliceApproximationOptions opt;
  opt.slice_rank = 2;
  EXPECT_FALSE(ApproximateSliceRange(x, 3, 2, opt).ok());
  EXPECT_FALSE(ApproximateSliceRange(x, -1, 1, opt).ok());
  EXPECT_TRUE(ApproximateSliceRange(x, 3, 1, opt).ok());
}

TEST(SliceSvdTest, HelperProducts) {
  Rng rng(8);
  Tensor x = Tensor::GaussianRandom({7, 6, 2}, rng);
  SliceApproximationOptions opt;
  opt.slice_rank = 3;
  Result<SliceApproximation> approx = ApproximateSlices(x, opt);
  ASSERT_TRUE(approx.ok());
  const SliceSvd& sl = approx.value().slices[0];
  Matrix us = sl.UTimesS();
  Matrix vs = sl.VTimesS();
  for (Index j = 0; j < 3; ++j) {
    for (Index i = 0; i < 7; ++i) {
      EXPECT_NEAR(us(i, j), sl.u(i, j) * sl.s[static_cast<std::size_t>(j)],
                  1e-12);
    }
    for (Index i = 0; i < 6; ++i) {
      EXPECT_NEAR(vs(i, j), sl.v(i, j) * sl.s[static_cast<std::size_t>(j)],
                  1e-12);
    }
  }
  EXPECT_TRUE(AlmostEqual(sl.Reconstruct(), MultiplyNT(us, sl.v), 1e-12));
}

TEST(SliceApproximationTest, ExactMethodMatchesTruncatedSvd) {
  Tensor x = MakeLowRankTensor({20, 16, 6}, {5, 5, 5}, 0.2, 11);
  SliceApproximationOptions opt;
  opt.slice_rank = 4;
  opt.method = SliceSvdMethod::kExact;
  Result<SliceApproximation> approx = ApproximateSlices(x, opt);
  ASSERT_TRUE(approx.ok());
  double direct_err = 0, total = 0;
  for (Index l = 0; l < 6; ++l) {
    Matrix slice = x.FrontalSlice(l);
    SvdResult svd = ThinSvd(slice);
    svd.Truncate(4);
    direct_err += (slice - svd.Reconstruct()).SquaredNorm();
    total += slice.SquaredNorm();
  }
  EXPECT_NEAR(approx.value().RelativeErrorAgainst(x), direct_err / total,
              1e-10);
}

TEST(SliceApproximationTest, AdaptiveRankVariesWithSliceComplexity) {
  // First half of the slices are exactly rank-1; the rest are dense noise.
  Rng rng(12);
  Tensor x({20, 15, 8});
  for (Index l = 0; l < 8; ++l) {
    Matrix slice(20, 15);
    if (l < 4) {
      Matrix u = Matrix::GaussianRandom(20, 1, rng);
      Matrix v = Matrix::GaussianRandom(15, 1, rng);
      slice = MultiplyNT(u, v);
    } else {
      slice = Matrix::GaussianRandom(20, 15, rng);
    }
    x.SetFrontalSlice(l, slice);
  }
  SliceApproximationOptions opt;
  opt.slice_rank = 8;
  opt.method = SliceSvdMethod::kExact;
  opt.adaptive_tolerance = 1e-6;
  Result<SliceApproximation> approx = ApproximateSlices(x, opt);
  ASSERT_TRUE(approx.ok());
  for (Index l = 0; l < 4; ++l) {
    EXPECT_EQ(approx.value().slices[static_cast<std::size_t>(l)].s.size(), 1u)
        << "rank-1 slice " << l;
  }
  for (Index l = 4; l < 8; ++l) {
    EXPECT_EQ(approx.value().slices[static_cast<std::size_t>(l)].s.size(), 8u)
        << "noise slice " << l;
  }
}

TEST(SliceApproximationTest, AdaptiveApproximationStillDecomposes) {
  // D-Tucker consumes variable-rank slices transparently.
  Tensor x = MakeLowRankTensor({18, 15, 10}, {3, 3, 3}, 0.05, 13);
  SliceApproximationOptions sopt;
  sopt.slice_rank = 8;
  sopt.adaptive_tolerance = 1e-4;
  Result<SliceApproximation> approx = ApproximateSlices(x, sopt);
  ASSERT_TRUE(approx.ok());

  DTuckerOptions opt;
  opt.tucker.ranks = {3, 3, 3};
  opt.tucker.max_iterations = 10;
  Result<TuckerDecomposition> dec =
      DTuckerFromApproximation(approx.value(), opt);
  ASSERT_TRUE(dec.ok()) << dec.status().ToString();
  EXPECT_LT(dec.value().RelativeErrorAgainst(x), 0.02);
}

TEST(SliceApproximationTest, NoisySlicesNearOptimal) {
  // With noise, the per-slice rSVD error should be close to the exact
  // truncated-SVD error of the slices.
  Tensor x = MakeLowRankTensor({30, 25, 8}, {4, 4, 4}, 0.2, 9);
  SliceApproximationOptions opt;
  opt.slice_rank = 4;
  opt.power_iterations = 2;
  Result<SliceApproximation> approx = ApproximateSlices(x, opt);
  ASSERT_TRUE(approx.ok());

  double exact_err = 0, total = 0;
  for (Index l = 0; l < 8; ++l) {
    Matrix slice = x.FrontalSlice(l);
    SvdResult svd = ThinSvd(slice);
    svd.Truncate(4);
    exact_err += (slice - svd.Reconstruct()).SquaredNorm();
    total += slice.SquaredNorm();
  }
  const double rsvd_err = approx.value().RelativeErrorAgainst(x);
  EXPECT_LT(rsvd_err, (exact_err / total) * 1.1 + 1e-12);
}

}  // namespace
}  // namespace dtucker
