#include "sparse/sparse_tensor.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "tensor/tensor_ops.h"

namespace dtucker {
namespace {

TEST(SparseTensorTest, BasicAccounting) {
  SparseTensor sp({3, 4, 5});
  EXPECT_EQ(sp.order(), 3);
  EXPECT_EQ(sp.volume(), 60);
  EXPECT_EQ(sp.nnz(), 0u);
  sp.Add({1, 2, 3}, 7.0);
  sp.AddFlat(0, 1.0);
  EXPECT_EQ(sp.nnz(), 2u);
  EXPECT_GT(sp.ByteSize(), 0u);
}

TEST(SparseTensorTest, ToDenseMatchesAdds) {
  SparseTensor sp({2, 3, 2});
  sp.Add({0, 0, 0}, 1.0);
  sp.Add({1, 2, 1}, 2.0);
  sp.Add({1, 2, 1}, 3.0);  // Duplicate is additive.
  Tensor d = sp.ToDense();
  EXPECT_EQ(d(0, 0, 0), 1.0);
  EXPECT_EQ(d(1, 2, 1), 5.0);
  EXPECT_EQ(d(0, 1, 0), 0.0);
}

TEST(SparseTensorTest, SquaredNormMatchesDenseWithoutDuplicates) {
  Rng rng(1);
  SparseTensor sp({4, 4, 4});
  Tensor dense({4, 4, 4});
  for (int e = 0; e < 20; ++e) {
    // Distinct flat positions.
    Index flat = static_cast<Index>(e) * 3;
    double v = rng.Gaussian();
    sp.AddFlat(flat, v);
    dense.data()[flat] += v;
  }
  EXPECT_NEAR(sp.SquaredNorm(), dense.SquaredNorm(), 1e-12);
}

// Property: the sparse TTM agrees with densify-then-dense-TTM on every
// mode and both transpose conventions.
class SparseTtmParamTest : public ::testing::TestWithParam<Index> {};

TEST_P(SparseTtmParamTest, MatchesDenseModeProduct) {
  const Index mode = GetParam();
  Rng rng(100 + mode);
  SparseTensor sp({5, 6, 7});
  for (int e = 0; e < 40; ++e) {
    sp.AddFlat(static_cast<Index>(rng.UniformInt(5 * 6 * 7)), rng.Gaussian());
  }
  Tensor dense = sp.ToDense();

  Matrix u = Matrix::GaussianRandom(3, dense.dim(mode), rng);  // J x I_n.
  EXPECT_TRUE(AlmostEqual(sp.ModeProductDense(u, mode, Trans::kNo),
                          ModeProduct(dense, u, mode, Trans::kNo), 1e-10));

  Matrix a = Matrix::GaussianRandom(dense.dim(mode), 3, rng);  // I_n x J.
  EXPECT_TRUE(AlmostEqual(sp.ModeProductDense(a, mode, Trans::kYes),
                          ModeProduct(dense, a, mode, Trans::kYes), 1e-10));
}

INSTANTIATE_TEST_SUITE_P(Modes, SparseTtmParamTest,
                         ::testing::Values(0, 1, 2));

TEST(SparseTensorTest, FourOrderSparseTtm) {
  Rng rng(2);
  SparseTensor sp({3, 4, 2, 5});
  for (int e = 0; e < 30; ++e) {
    sp.AddFlat(static_cast<Index>(rng.UniformInt(3 * 4 * 2 * 5)),
               rng.Gaussian());
  }
  Tensor dense = sp.ToDense();
  for (Index mode = 0; mode < 4; ++mode) {
    Matrix a = Matrix::GaussianRandom(dense.dim(mode), 2, rng);
    EXPECT_TRUE(AlmostEqual(sp.ModeProductDense(a, mode, Trans::kYes),
                            ModeProduct(dense, a, mode, Trans::kYes), 1e-10))
        << "mode " << mode;
  }
}

TEST(SparseTensorTest, EmptySparseTtmIsZero) {
  SparseTensor sp({3, 4, 5});
  Matrix a = Matrix::Identity(4);
  Tensor y = sp.ModeProductDense(a, 1, Trans::kYes);
  EXPECT_EQ(y.FrobeniusNorm(), 0.0);
  EXPECT_EQ(y.dim(1), 4);
}

}  // namespace
}  // namespace dtucker
