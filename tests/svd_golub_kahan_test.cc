#include "linalg/svd_golub_kahan.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "linalg/blas.h"

namespace dtucker {
namespace {

struct GkCase {
  Index m, n;
};

class GkParamTest : public ::testing::TestWithParam<GkCase> {};

TEST_P(GkParamTest, SatisfiesDefiningProperties) {
  const GkCase c = GetParam();
  Rng rng(77 + c.m * 13 + c.n);
  Matrix a = Matrix::GaussianRandom(c.m, c.n, rng);
  Result<SvdResult> r = ThinSvdGolubKahan(a);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const SvdResult& svd = r.value();

  const Index p = std::min(c.m, c.n);
  ASSERT_EQ(svd.u.cols(), p);
  ASSERT_EQ(svd.v.cols(), p);
  EXPECT_TRUE(AlmostEqual(MultiplyTN(svd.u, svd.u), Matrix::Identity(p),
                          1e-8));
  EXPECT_TRUE(AlmostEqual(MultiplyTN(svd.v, svd.v), Matrix::Identity(p),
                          1e-8));
  for (Index i = 0; i + 1 < p; ++i) {
    EXPECT_GE(svd.s[static_cast<std::size_t>(i)],
              svd.s[static_cast<std::size_t>(i + 1)]);
  }
  EXPECT_TRUE(AlmostEqual(svd.Reconstruct(), a, 1e-7));
}

INSTANTIATE_TEST_SUITE_P(Shapes, GkParamTest,
                         ::testing::Values(GkCase{1, 1}, GkCase{2, 2},
                                           GkCase{5, 5}, GkCase{12, 12},
                                           GkCase{40, 40}, GkCase{60, 25},
                                           GkCase{25, 60}, GkCase{200, 15},
                                           GkCase{15, 200}));

TEST(GkSvdTest, AgreesWithJacobiSingularValues) {
  Rng rng(78);
  Matrix a = Matrix::GaussianRandom(45, 30, rng);
  Result<SvdResult> gk = ThinSvdGolubKahan(a);
  ASSERT_TRUE(gk.ok());
  SvdResult jac = ThinSvd(a);
  ASSERT_EQ(gk.value().s.size(), jac.s.size());
  for (std::size_t i = 0; i < jac.s.size(); ++i) {
    EXPECT_NEAR(gk.value().s[i], jac.s[i], 1e-9 * (1 + jac.s[0]));
  }
}

TEST(GkSvdTest, RankDeficientMatrix) {
  Rng rng(79);
  Matrix b = Matrix::GaussianRandom(20, 3, rng);
  Matrix c = Matrix::GaussianRandom(3, 15, rng);
  Matrix a = Multiply(b, c);
  Result<SvdResult> r = ThinSvdGolubKahan(a);
  ASSERT_TRUE(r.ok());
  for (std::size_t i = 3; i < r.value().s.size(); ++i) {
    EXPECT_NEAR(r.value().s[i], 0.0, 1e-8 * r.value().s[0]);
  }
  EXPECT_TRUE(AlmostEqual(r.value().Reconstruct(), a, 1e-7));
}

TEST(GkSvdTest, ZeroAndDiagonalMatrices) {
  Result<SvdResult> z = ThinSvdGolubKahan(Matrix::Zero(6, 4));
  ASSERT_TRUE(z.ok());
  for (double s : z.value().s) EXPECT_EQ(s, 0.0);

  Result<SvdResult> d = ThinSvdGolubKahan(Matrix::Diagonal({2, 7, 4}));
  ASSERT_TRUE(d.ok());
  EXPECT_NEAR(d.value().s[0], 7, 1e-12);
  EXPECT_NEAR(d.value().s[1], 4, 1e-12);
  EXPECT_NEAR(d.value().s[2], 2, 1e-12);
}

TEST(GkSvdTest, GradedSingularValues) {
  // Wide dynamic range: sigma_i = 10^{-i}.
  const Index n = 10;
  Rng rng(80);
  Matrix u(n, n), v(n, n);
  {
    Matrix gu = Matrix::GaussianRandom(n, n, rng);
    Matrix gv = Matrix::GaussianRandom(n, n, rng);
    SvdResult su = ThinSvd(gu);
    SvdResult sv = ThinSvd(gv);
    u = su.u;
    v = sv.u;
  }
  std::vector<double> sigma(static_cast<std::size_t>(n));
  for (Index i = 0; i < n; ++i) sigma[static_cast<std::size_t>(i)] =
      std::pow(10.0, -static_cast<double>(i));
  Matrix us = u;
  for (Index j = 0; j < n; ++j) {
    Scal(sigma[static_cast<std::size_t>(j)], us.col_data(j), n);
  }
  Matrix a = MultiplyNT(us, v);
  Result<SvdResult> r = ThinSvdGolubKahan(a);
  ASSERT_TRUE(r.ok());
  // Large singular values recovered to high relative accuracy.
  for (Index i = 0; i < 6; ++i) {
    EXPECT_NEAR(r.value().s[static_cast<std::size_t>(i)],
                sigma[static_cast<std::size_t>(i)],
                1e-8 * sigma[static_cast<std::size_t>(i)] + 1e-14);
  }
}

}  // namespace
}  // namespace dtucker
