#include "linalg/svd.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "linalg/blas.h"

namespace dtucker {
namespace {

struct SvdCase {
  Index m, n;
};

class SvdParamTest : public ::testing::TestWithParam<SvdCase> {};

TEST_P(SvdParamTest, SatisfiesDefiningProperties) {
  const SvdCase c = GetParam();
  Rng rng(101 + c.m * 17 + c.n);
  Matrix a = Matrix::GaussianRandom(c.m, c.n, rng);
  SvdResult svd = ThinSvd(a);

  const Index p = std::min(c.m, c.n);
  ASSERT_EQ(svd.u.cols(), p);
  ASSERT_EQ(svd.v.cols(), p);
  ASSERT_EQ(static_cast<Index>(svd.s.size()), p);

  // Orthonormal factors.
  EXPECT_TRUE(AlmostEqual(MultiplyTN(svd.u, svd.u), Matrix::Identity(p),
                          1e-9));
  EXPECT_TRUE(AlmostEqual(MultiplyTN(svd.v, svd.v), Matrix::Identity(p),
                          1e-9));
  // Descending nonnegative singular values.
  for (Index i = 0; i + 1 < p; ++i) {
    EXPECT_GE(svd.s[static_cast<std::size_t>(i)],
              svd.s[static_cast<std::size_t>(i + 1)]);
  }
  EXPECT_GE(svd.s.back(), 0.0);
  // Exact reconstruction (full rank p factors of a generic matrix).
  EXPECT_TRUE(AlmostEqual(svd.Reconstruct(), a, 1e-8));
}

INSTANTIATE_TEST_SUITE_P(Shapes, SvdParamTest,
                         ::testing::Values(SvdCase{1, 1}, SvdCase{4, 4},
                                           SvdCase{12, 12}, SvdCase{50, 8},
                                           SvdCase{8, 50}, SvdCase{200, 10},
                                           SvdCase{10, 200},
                                           SvdCase{33, 33}));

TEST(SvdTest, KnownDiagonal) {
  Matrix a = Matrix::Diagonal({3, 1, 2});
  SvdResult svd = ThinSvd(a);
  EXPECT_NEAR(svd.s[0], 3.0, 1e-12);
  EXPECT_NEAR(svd.s[1], 2.0, 1e-12);
  EXPECT_NEAR(svd.s[2], 1.0, 1e-12);
}

TEST(SvdTest, SingularValuesMatchFrobeniusNorm) {
  Rng rng(5);
  Matrix a = Matrix::GaussianRandom(20, 9, rng);
  SvdResult svd = ThinSvd(a);
  double sum_sq = 0;
  for (double s : svd.s) sum_sq += s * s;
  EXPECT_NEAR(sum_sq, a.SquaredNorm(), 1e-8 * a.SquaredNorm());
}

TEST(SvdTest, RankDeficientMatrixHasZeroTail) {
  // Rank-2 matrix of size 6x4.
  Rng rng(6);
  Matrix b = Matrix::GaussianRandom(6, 2, rng);
  Matrix c = Matrix::GaussianRandom(2, 4, rng);
  Matrix a = Multiply(b, c);
  SvdResult svd = ThinSvd(a);
  EXPECT_GT(svd.s[1], 1e-8);
  EXPECT_NEAR(svd.s[2], 0.0, 1e-9);
  EXPECT_NEAR(svd.s[3], 0.0, 1e-9);
  EXPECT_TRUE(AlmostEqual(svd.Reconstruct(), a, 1e-9));
}

TEST(SvdTest, TruncationGivesBestLowRankError) {
  // Eckart-Young: truncated SVD residual equals the tail energy.
  Rng rng(7);
  Matrix a = Matrix::GaussianRandom(30, 20, rng);
  SvdResult svd = ThinSvd(a);
  const Index k = 5;
  double tail = 0;
  for (std::size_t i = k; i < svd.s.size(); ++i) tail += svd.s[i] * svd.s[i];
  SvdResult trunc = svd;
  trunc.Truncate(k);
  Matrix residual = a - trunc.Reconstruct();
  EXPECT_NEAR(residual.SquaredNorm(), tail, 1e-6 * a.SquaredNorm());
}

TEST(SvdTest, LeadingLeftSingularVectors) {
  Rng rng(8);
  Matrix a = Matrix::GaussianRandom(40, 10, rng);
  Matrix u = LeadingLeftSingularVectors(a, 3);
  ASSERT_EQ(u.rows(), 40);
  ASSERT_EQ(u.cols(), 3);
  EXPECT_TRUE(AlmostEqual(MultiplyTN(u, u), Matrix::Identity(3), 1e-9));
  // They span the same subspace as the full SVD's first 3 columns:
  // projector difference should vanish.
  SvdResult svd = ThinSvd(a);
  Matrix u3 = svd.u.LeftCols(3);
  Matrix p1 = MultiplyNT(u, u);
  Matrix p2 = MultiplyNT(u3, u3);
  EXPECT_TRUE(AlmostEqual(p1, p2, 1e-7));
}

TEST(SvdTest, EmptyAndDegenerate) {
  SvdResult svd = ThinSvd(Matrix(0, 0));
  EXPECT_EQ(svd.s.size(), 0u);
  Matrix zero = Matrix::Zero(4, 3);
  SvdResult z = ThinSvd(zero);
  for (double s : z.s) EXPECT_EQ(s, 0.0);
}

TEST(SvdTest, UTimesSMatchesManualScaling) {
  Rng rng(9);
  Matrix a = Matrix::GaussianRandom(10, 4, rng);
  SvdResult svd = ThinSvd(a);
  Matrix us = svd.UTimesS();
  for (Index j = 0; j < 4; ++j) {
    for (Index i = 0; i < 10; ++i) {
      EXPECT_NEAR(us(i, j), svd.u(i, j) * svd.s[static_cast<std::size_t>(j)],
                  1e-12);
    }
  }
}

}  // namespace
}  // namespace dtucker
