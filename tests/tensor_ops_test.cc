#include "tensor/tensor_ops.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace dtucker {
namespace {

// Reference unfolding straight from the Kolda index formula.
Matrix NaiveUnfold(const Tensor& x, Index mode) {
  Index cols = 1;
  for (Index k = 0; k < x.order(); ++k) {
    if (k != mode) cols *= x.dim(k);
  }
  Matrix out(x.dim(mode), cols);
  std::vector<Index> idx(static_cast<std::size_t>(x.order()), 0);
  for (Index flat = 0; flat < x.size(); ++flat) {
    Index col = 0, mult = 1;
    for (Index k = 0; k < x.order(); ++k) {
      if (k == mode) continue;
      col += idx[static_cast<std::size_t>(k)] * mult;
      mult *= x.dim(k);
    }
    out(idx[static_cast<std::size_t>(mode)], col) = x.data()[flat];
    for (Index k = 0; k < x.order(); ++k) {
      auto& ik = idx[static_cast<std::size_t>(k)];
      if (++ik < x.dim(k)) break;
      ik = 0;
    }
  }
  return out;
}

TEST(TensorOpsTest, UnfoldMatchesNaiveAllModes3Order) {
  Rng rng(1);
  Tensor x = Tensor::GaussianRandom({3, 4, 5}, rng);
  for (Index n = 0; n < 3; ++n) {
    EXPECT_TRUE(AlmostEqual(Unfold(x, n), NaiveUnfold(x, n), 0.0))
        << "mode " << n;
  }
}

TEST(TensorOpsTest, UnfoldMatchesNaiveAllModes4Order) {
  Rng rng(2);
  Tensor x = Tensor::GaussianRandom({2, 3, 4, 5}, rng);
  for (Index n = 0; n < 4; ++n) {
    EXPECT_TRUE(AlmostEqual(Unfold(x, n), NaiveUnfold(x, n), 0.0))
        << "mode " << n;
  }
}

TEST(TensorOpsTest, FoldInvertsUnfold) {
  Rng rng(3);
  Tensor x = Tensor::GaussianRandom({4, 3, 6, 2}, rng);
  for (Index n = 0; n < 4; ++n) {
    Tensor back = Fold(Unfold(x, n), n, x.shape());
    EXPECT_TRUE(AlmostEqual(back, x, 0.0)) << "mode " << n;
  }
}

TEST(TensorOpsTest, ModeProductMatchesUnfoldIdentity) {
  // X x_n U  <=>  U * X_(n) as unfoldings — the defining identity.
  Rng rng(4);
  Tensor x = Tensor::GaussianRandom({4, 5, 6}, rng);
  for (Index n = 0; n < 3; ++n) {
    Matrix u = Matrix::GaussianRandom(3, x.dim(n), rng);
    Tensor y = ModeProduct(x, u, n);
    std::vector<Index> expect_shape = x.shape();
    expect_shape[static_cast<std::size_t>(n)] = 3;
    ASSERT_EQ(y.shape(), expect_shape);
    EXPECT_TRUE(
        AlmostEqual(Unfold(y, n), Multiply(u, Unfold(x, n)), 1e-10))
        << "mode " << n;
  }
}

TEST(TensorOpsTest, ModeProductTransposeFlag) {
  Rng rng(5);
  Tensor x = Tensor::GaussianRandom({4, 5, 6}, rng);
  for (Index n = 0; n < 3; ++n) {
    Matrix a = Matrix::GaussianRandom(x.dim(n), 2, rng);  // I_n x J.
    Tensor y1 = ModeProduct(x, a, n, Trans::kYes);
    Tensor y2 = ModeProduct(x, a.Transposed(), n, Trans::kNo);
    EXPECT_TRUE(AlmostEqual(y1, y2, 1e-10)) << "mode " << n;
  }
}

TEST(TensorOpsTest, ModeProductsOnDistinctModesCommute) {
  Rng rng(6);
  Tensor x = Tensor::GaussianRandom({4, 5, 6}, rng);
  Matrix u = Matrix::GaussianRandom(2, 4, rng);
  Matrix v = Matrix::GaussianRandom(3, 6, rng);
  Tensor a = ModeProduct(ModeProduct(x, u, 0), v, 2);
  Tensor b = ModeProduct(ModeProduct(x, v, 2), u, 0);
  EXPECT_TRUE(AlmostEqual(a, b, 1e-10));
}

TEST(TensorOpsTest, ModeProductSameModeComposes) {
  // (X x_n U) x_n W = X x_n (W U).
  Rng rng(7);
  Tensor x = Tensor::GaussianRandom({4, 5, 6}, rng);
  Matrix u = Matrix::GaussianRandom(3, 5, rng);
  Matrix w = Matrix::GaussianRandom(2, 3, rng);
  Tensor a = ModeProduct(ModeProduct(x, u, 1), w, 1);
  Tensor b = ModeProduct(x, Multiply(w, u), 1);
  EXPECT_TRUE(AlmostEqual(a, b, 1e-10));
}

TEST(TensorOpsTest, ModeProductChainSkipsRequestedMode) {
  Rng rng(8);
  Tensor x = Tensor::GaussianRandom({4, 5, 6}, rng);
  std::vector<Matrix> mats = {Matrix::GaussianRandom(4, 2, rng),
                              Matrix::GaussianRandom(5, 2, rng),
                              Matrix::GaussianRandom(6, 2, rng)};
  Tensor y = ModeProductChain(x, mats, /*skip_mode=*/1, Trans::kYes);
  EXPECT_EQ(y.dim(0), 2);
  EXPECT_EQ(y.dim(1), 5);  // Untouched.
  EXPECT_EQ(y.dim(2), 2);
  Tensor manual =
      ModeProduct(ModeProduct(x, mats[0], 0, Trans::kYes), mats[2], 2,
                  Trans::kYes);
  EXPECT_TRUE(AlmostEqual(y, manual, 1e-10));
}

TEST(TensorOpsTest, UnfoldingKroneckerIdentity) {
  // The identity every Tucker solver relies on:
  //   Y = X x_1 U1 x_2 U2 x_3 U3  =>  Y_(1) = U1 X_(1) (U3 (x) U2)^T.
  Rng rng(9);
  Tensor x = Tensor::GaussianRandom({3, 4, 5}, rng);
  Matrix u1 = Matrix::GaussianRandom(2, 3, rng);
  Matrix u2 = Matrix::GaussianRandom(2, 4, rng);
  Matrix u3 = Matrix::GaussianRandom(2, 5, rng);
  Tensor y = ModeProduct(ModeProduct(ModeProduct(x, u1, 0), u2, 1), u3, 2);
  Matrix rhs = Multiply(Multiply(u1, Unfold(x, 0)),
                        Kronecker(u3, u2).Transposed());
  EXPECT_TRUE(AlmostEqual(Unfold(y, 0), rhs, 1e-9));
}

TEST(TensorOpsTest, KroneckerKnownSmall) {
  Matrix a({{1, 2}, {3, 4}});
  Matrix b({{0, 1}, {1, 0}});
  Matrix k = Kronecker(a, b);
  ASSERT_EQ(k.rows(), 4);
  ASSERT_EQ(k.cols(), 4);
  // Top-left block = 1 * B.
  EXPECT_EQ(k(0, 0), 0);
  EXPECT_EQ(k(0, 1), 1);
  EXPECT_EQ(k(1, 0), 1);
  // Top-right block = 2 * B.
  EXPECT_EQ(k(0, 2), 0);
  EXPECT_EQ(k(0, 3), 2);
  // Bottom-right block = 4 * B.
  EXPECT_EQ(k(3, 2), 4);
}

TEST(TensorOpsTest, KroneckerMixedProductProperty) {
  // (A (x) B)(C (x) D) = AC (x) BD.
  Rng rng(10);
  Matrix a = Matrix::GaussianRandom(3, 4, rng);
  Matrix b = Matrix::GaussianRandom(2, 5, rng);
  Matrix c = Matrix::GaussianRandom(4, 2, rng);
  Matrix d = Matrix::GaussianRandom(5, 3, rng);
  Matrix lhs = Multiply(Kronecker(a, b), Kronecker(c, d));
  Matrix rhs = Kronecker(Multiply(a, c), Multiply(b, d));
  EXPECT_TRUE(AlmostEqual(lhs, rhs, 1e-9));
}

TEST(TensorOpsTest, KhatriRaoColumnsAreKroneckerOfColumns) {
  Rng rng(11);
  Matrix a = Matrix::GaussianRandom(3, 4, rng);
  Matrix b = Matrix::GaussianRandom(5, 4, rng);
  Matrix kr = KhatriRao(a, b);
  ASSERT_EQ(kr.rows(), 15);
  ASSERT_EQ(kr.cols(), 4);
  for (Index j = 0; j < 4; ++j) {
    Matrix kj = Kronecker(a.Col(j), b.Col(j));
    for (Index i = 0; i < 15; ++i) EXPECT_NEAR(kr(i, j), kj(i, 0), 1e-12);
  }
}

}  // namespace
}  // namespace dtucker
