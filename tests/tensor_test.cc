#include "tensor/tensor.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace dtucker {
namespace {

TEST(TensorTest, ConstructionAndShape) {
  Tensor t({3, 4, 5});
  EXPECT_EQ(t.order(), 3);
  EXPECT_EQ(t.dim(0), 3);
  EXPECT_EQ(t.dim(1), 4);
  EXPECT_EQ(t.dim(2), 5);
  EXPECT_EQ(t.size(), 60);
  EXPECT_EQ(t.ByteSize(), 60u * sizeof(double));
}

TEST(TensorTest, LayoutIsModeOneFastest) {
  Tensor t({2, 3, 4});
  t(1, 0, 0) = 1.0;
  t(0, 1, 0) = 2.0;
  t(0, 0, 1) = 3.0;
  EXPECT_EQ(t.data()[1], 1.0);       // Stride of mode 0 is 1.
  EXPECT_EQ(t.data()[2], 2.0);       // Stride of mode 1 is I1 = 2.
  EXPECT_EQ(t.data()[6], 3.0);       // Stride of mode 2 is I1*I2 = 6.
}

TEST(TensorTest, MultiIndexAccessAgreesWithConvenienceAccessors) {
  Rng rng(1);
  Tensor t = Tensor::GaussianRandom({3, 4, 5}, rng);
  for (Index k = 0; k < 5; ++k) {
    for (Index j = 0; j < 4; ++j) {
      for (Index i = 0; i < 3; ++i) {
        EXPECT_EQ(t.At({i, j, k}), t(i, j, k));
      }
    }
  }
}

TEST(TensorTest, FourOrderAccess) {
  Tensor t({2, 3, 4, 5});
  t(1, 2, 3, 4) = 42.0;
  EXPECT_EQ(t.At({1, 2, 3, 4}), 42.0);
  EXPECT_EQ(t(1, 2, 3, 4), 42.0);
}

TEST(TensorTest, FromFlatRoundTrip) {
  std::vector<double> data(24);
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = i;
  Tensor t = Tensor::FromFlat({2, 3, 4}, data);
  EXPECT_EQ(t(1, 0, 0), 1);
  EXPECT_EQ(t(0, 1, 0), 2);
  EXPECT_EQ(t(1, 2, 3), 23);
}

TEST(TensorTest, Norms) {
  Tensor t({2, 2, 1});
  t(0, 0, 0) = 3;
  t(1, 1, 0) = 4;
  EXPECT_DOUBLE_EQ(t.SquaredNorm(), 25.0);
  EXPECT_DOUBLE_EQ(t.FrobeniusNorm(), 5.0);
}

TEST(TensorTest, ElementwiseArithmetic) {
  Rng rng(2);
  Tensor a = Tensor::GaussianRandom({3, 3, 3}, rng);
  Tensor b = a;
  b += a;
  b -= a;
  EXPECT_TRUE(AlmostEqual(a, b, 1e-14));
  b *= 2.0;
  EXPECT_NEAR(b.SquaredNorm(), 4.0 * a.SquaredNorm(), 1e-10);
}

TEST(TensorTest, FrontalSliceIsContiguousCopy) {
  Rng rng(3);
  Tensor t = Tensor::GaussianRandom({4, 5, 6}, rng);
  EXPECT_EQ(t.NumFrontalSlices(), 6);
  Matrix s2 = t.FrontalSlice(2);
  for (Index j = 0; j < 5; ++j) {
    for (Index i = 0; i < 4; ++i) EXPECT_EQ(s2(i, j), t(i, j, 2));
  }
}

TEST(TensorTest, FrontalSlicesOfFourOrderTensorFlattenTrailingModes) {
  Rng rng(4);
  Tensor t = Tensor::GaussianRandom({3, 4, 2, 5}, rng);
  EXPECT_EQ(t.NumFrontalSlices(), 10);
  // Slice l = k + 2*m corresponds to (i3 = k, i4 = m), mode-3 fastest.
  Matrix s = t.FrontalSlice(1 + 2 * 3);
  for (Index j = 0; j < 4; ++j) {
    for (Index i = 0; i < 3; ++i) EXPECT_EQ(s(i, j), t(i, j, 1, 3));
  }
}

TEST(TensorTest, SetFrontalSliceRoundTrip) {
  Tensor t({3, 4, 5});
  Rng rng(5);
  Matrix m = Matrix::GaussianRandom(3, 4, rng);
  t.SetFrontalSlice(3, m);
  EXPECT_TRUE(AlmostEqual(t.FrontalSlice(3), m));
  EXPECT_EQ(t.FrontalSlice(2).FrobeniusNorm(), 0.0);
}

TEST(TensorTest, LastModeSlice) {
  Rng rng(6);
  Tensor t = Tensor::GaussianRandom({3, 4, 10}, rng);
  Tensor sub = t.LastModeSlice(2, 5);
  EXPECT_EQ(sub.dim(2), 5);
  for (Index k = 0; k < 5; ++k) {
    for (Index j = 0; j < 4; ++j) {
      for (Index i = 0; i < 3; ++i) {
        EXPECT_EQ(sub(i, j, k), t(i, j, k + 2));
      }
    }
  }
}

TEST(TensorTest, ReshapedPreservesFlatOrder) {
  Rng rng(7);
  Tensor t = Tensor::GaussianRandom({4, 3, 2}, rng);
  Tensor r = t.Reshaped({2, 6, 2});
  ASSERT_EQ(r.size(), t.size());
  for (Index i = 0; i < t.size(); ++i) EXPECT_EQ(r.data()[i], t.data()[i]);
}

TEST(TensorTest, PermutedMovesModes) {
  Rng rng(8);
  Tensor t = Tensor::GaussianRandom({3, 4, 5}, rng);
  Tensor p = t.Permuted({2, 0, 1});  // Out mode 0 = in mode 2, etc.
  EXPECT_EQ(p.dim(0), 5);
  EXPECT_EQ(p.dim(1), 3);
  EXPECT_EQ(p.dim(2), 4);
  for (Index k = 0; k < 5; ++k) {
    for (Index j = 0; j < 4; ++j) {
      for (Index i = 0; i < 3; ++i) {
        EXPECT_EQ(p(k, i, j), t(i, j, k));
      }
    }
  }
}

TEST(TensorTest, PermutedRoundTripThroughInverse) {
  Rng rng(9);
  Tensor t = Tensor::GaussianRandom({2, 3, 4, 5}, rng);
  std::vector<Index> perm = {3, 1, 0, 2};
  std::vector<Index> inv(4);
  for (Index k = 0; k < 4; ++k) inv[static_cast<std::size_t>(perm[static_cast<std::size_t>(k)])] = k;
  Tensor round = t.Permuted(perm).Permuted(inv);
  EXPECT_TRUE(AlmostEqual(round, t, 0.0));
}

TEST(TensorTest, RelativeErrorAndInnerProduct) {
  Rng rng(10);
  Tensor a = Tensor::GaussianRandom({3, 3, 3}, rng);
  EXPECT_DOUBLE_EQ(RelativeError(a, a), 0.0);
  EXPECT_NEAR(InnerProduct(a, a), a.SquaredNorm(), 1e-12);
  Tensor zero({3, 3, 3});
  EXPECT_DOUBLE_EQ(RelativeError(a, zero), 1.0);
}

TEST(TensorTest, ShapeString) {
  Tensor t({3, 4, 5});
  EXPECT_EQ(t.ShapeString(), "(3 x 4 x 5)");
}

}  // namespace
}  // namespace dtucker
