#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "data/generators.h"
#include "dtucker/slice_approximation.h"

namespace dtucker {
namespace {

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, WaitOnIdlePoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // Must not hang.
  SUCCEED();
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(257);
  pool.ParallelFor(hits.size(),
                   [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForSingleThreadRunsInline) {
  ThreadPool pool(1);
  std::vector<int> order;
  pool.ParallelFor(10, [&](std::size_t i) {
    order.push_back(static_cast<int>(i));  // Safe: inline execution.
  });
  std::vector<int> expected(10);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(ThreadPoolTest, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [&](std::size_t) { FAIL(); });
}

TEST(ThreadPoolTest, ReusableAcrossRounds) {
  ThreadPool pool(4);
  for (int round = 0; round < 5; ++round) {
    std::atomic<int> sum{0};
    pool.ParallelFor(64, [&](std::size_t i) {
      sum.fetch_add(static_cast<int>(i));
    });
    EXPECT_EQ(sum.load(), 64 * 63 / 2);
  }
}

TEST(ParallelApproximationTest, BitIdenticalToSerial) {
  Tensor x = MakeLowRankTensor({24, 20, 16}, {4, 4, 4}, 0.2, 5);
  SliceApproximationOptions serial;
  serial.slice_rank = 4;
  serial.num_threads = 1;
  SliceApproximationOptions parallel = serial;
  parallel.num_threads = 4;

  Result<SliceApproximation> a = ApproximateSlices(x, serial);
  Result<SliceApproximation> b = ApproximateSlices(x, parallel);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a.value().NumSlices(), b.value().NumSlices());
  for (Index l = 0; l < a.value().NumSlices(); ++l) {
    const auto& sa = a.value().slices[static_cast<std::size_t>(l)];
    const auto& sb = b.value().slices[static_cast<std::size_t>(l)];
    EXPECT_TRUE(AlmostEqual(sa.u, sb.u, 0.0)) << "slice " << l;
    EXPECT_TRUE(AlmostEqual(sa.v, sb.v, 0.0)) << "slice " << l;
    EXPECT_EQ(sa.s, sb.s) << "slice " << l;
  }
}

}  // namespace
}  // namespace dtucker
