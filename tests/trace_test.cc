// Tests for the span tracer: nesting, ring-buffer wrap, Chrome-trace JSON
// round-trip, multi-thread recording, and the disabled-tracer
// zero-allocation guarantee (via a global operator new probe, the
// bench_dtucker pattern).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/trace.h"
#include "json_test_util.h"

namespace {

// Global allocation probe: counts every operator new in the binary.
std::atomic<std::size_t> g_allocated_bytes{0};

std::size_t AllocatedBytes() {
  return g_allocated_bytes.load(std::memory_order_relaxed);
}

}  // namespace

void* operator new(std::size_t size) {
  g_allocated_bytes.fetch_add(size, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_allocated_bytes.fetch_add(size, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace dtucker {
namespace {

using internal_trace::SnapshotEvent;
using internal_trace::SnapshotEvents;

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetTraceEnabled(false);
    ClearTrace();
  }
  void TearDown() override {
    SetTraceEnabled(false);
    ClearTrace();
  }
};

TEST_F(TraceTest, DisabledRecordsNothing) {
  {
    TraceSpan span("should.not.appear");
  }
  EXPECT_EQ(TraceEventCount(), 0u);
}

TEST_F(TraceTest, NestedSpansRecordDepthAndContainment) {
  SetTraceEnabled(true);
  {
    TraceSpan outer("outer");
    {
      TraceSpan inner("inner");
    }
  }
  SetTraceEnabled(false);

  std::vector<SnapshotEvent> events = SnapshotEvents();
  ASSERT_EQ(events.size(), 2u);
  // Spans are recorded at destruction: inner closes first.
  const auto& inner = events[0].event;
  const auto& outer = events[1].event;
  EXPECT_STREQ(inner.name, "inner");
  EXPECT_STREQ(outer.name, "outer");
  EXPECT_EQ(outer.depth, 0u);
  EXPECT_EQ(inner.depth, 1u);
  // Parent/child ordering: the child interval nests inside the parent's.
  EXPECT_GE(inner.start_ns, outer.start_ns);
  EXPECT_LE(inner.start_ns + inner.dur_ns, outer.start_ns + outer.dur_ns);
  // Both recorded by this thread.
  EXPECT_EQ(events[0].tid, events[1].tid);
}

TEST_F(TraceTest, SpanStartedDisabledStaysUnrecorded) {
  // The span latches the disabled state at construction, so destructing
  // with tracing enabled must still record nothing.
  {
    TraceSpan span("started.disabled");
    SetTraceEnabled(true);
  }
  SetTraceEnabled(false);
  EXPECT_EQ(TraceEventCount(), 0u);
}

TEST_F(TraceTest, MultipleThreadsGetDistinctThreadIds) {
  SetTraceEnabled(true);
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([] {
      TraceSpan span("worker");
    });
  }
  for (auto& t : threads) t.join();
  SetTraceEnabled(false);

  std::vector<SnapshotEvent> events = SnapshotEvents();
  ASSERT_EQ(events.size(), static_cast<std::size_t>(kThreads));
  std::vector<std::uint32_t> tids;
  for (const auto& se : events) tids.push_back(se.tid);
  std::sort(tids.begin(), tids.end());
  EXPECT_EQ(std::unique(tids.begin(), tids.end()), tids.end())
      << "every recording thread must have its own id";
}

TEST_F(TraceTest, ChromeExportIsValidJsonWithExpectedEvents) {
  SetTraceEnabled(true);
  {
    TraceSpan outer("phase \"quoted\"\n");  // Exercises escaping.
    TraceSpan inner("kernel");
  }
  SetTraceEnabled(false);

  std::ostringstream os;
  ExportChromeTrace(os);
  json_test::JsonValue root;
  ASSERT_TRUE(json_test::JsonParser::Parse(os.str(), &root))
      << "exporter must emit valid JSON:\n" << os.str();
  ASSERT_TRUE(root.IsObject());
  ASSERT_TRUE(root.Has("traceEvents"));
  const auto& events = root.at("traceEvents");
  ASSERT_TRUE(events.IsArray());
  int complete_events = 0;
  int metadata_events = 0;
  for (const auto& ev : events.array) {
    ASSERT_TRUE(ev.Has("ph"));
    if (ev.at("ph").string_value == "X") {
      ++complete_events;
      EXPECT_TRUE(ev.Has("name"));
      EXPECT_TRUE(ev.Has("ts"));
      EXPECT_TRUE(ev.Has("dur"));
      EXPECT_TRUE(ev.Has("tid"));
      EXPECT_TRUE(ev.Has("pid"));
      EXPECT_GE(ev.at("dur").number_value, 0.0);
    } else if (ev.at("ph").string_value == "M") {
      ++metadata_events;
    }
  }
  EXPECT_EQ(complete_events, 2);
  // Lane metadata (process_name + process_sort_index) for the rank-0 lane.
  EXPECT_GE(metadata_events, 2);
}

TEST_F(TraceTest, RingBufferWrapsAndCountsDrops) {
  SetTraceBufferCapacity(64);
  SetTraceEnabled(true);
  std::thread recorder([] {
    // A fresh thread picks up the small capacity set above.
    for (int i = 0; i < 200; ++i) {
      TraceSpan span("wrap");
    }
  });
  recorder.join();
  SetTraceEnabled(false);

  EXPECT_EQ(TraceEventCount(), 64u);
  EXPECT_EQ(TraceDroppedEventCount(), 200u - 64u);
  SetTraceBufferCapacity(1u << 15);  // Restore the default for later tests.
}

TEST_F(TraceTest, DisabledSpanAddsNoAllocations) {
  ASSERT_FALSE(TraceEnabled());
  // Warm up any lazy statics touched by the probe bracket itself.
  {
    TraceSpan warmup("warmup");
  }
  const std::size_t before = AllocatedBytes();
  for (int i = 0; i < 1000; ++i) {
    TraceSpan span("hot.path");
  }
  EXPECT_EQ(AllocatedBytes(), before)
      << "a disabled TraceSpan must not allocate";
}

TEST_F(TraceTest, EnabledSpanRecordPathDoesNotAllocateAfterRegistration) {
  SetTraceEnabled(true);
  {
    TraceSpan warmup("warmup");  // Registers this thread's ring buffer.
  }
  const std::size_t before = AllocatedBytes();
  for (int i = 0; i < 1000; ++i) {
    TraceSpan span("hot.path");
  }
  EXPECT_EQ(AllocatedBytes(), before)
      << "the record path must reuse the ring buffer, not allocate";
  SetTraceEnabled(false);
}

TEST_F(TraceTest, ClearTraceDropsBufferedEvents) {
  SetTraceEnabled(true);
  {
    TraceSpan span("to.be.cleared");
  }
  SetTraceEnabled(false);
  ASSERT_GT(TraceEventCount(), 0u);
  ClearTrace();
  EXPECT_EQ(TraceEventCount(), 0u);
  EXPECT_EQ(TraceDroppedEventCount(), 0u);
}

TEST_F(TraceTest, WriteChromeTraceReportsBadPath) {
  EXPECT_FALSE(WriteChromeTrace("/nonexistent-dir/trace.json").ok());
}

TEST_F(TraceTest, ExportReportsExactDropCountsAfterThreadExit) {
  SetTraceBufferCapacity(16);
  SetTraceEnabled(true);
  std::thread recorder([] {
    // Fresh thread -> fresh (tiny) ring.
    for (int i = 0; i < 100; ++i) {
      TraceSpan span("overflow");
    }
  });
  recorder.join();  // Both survivors and drop counts outlive the thread.
  SetTraceEnabled(false);

  EXPECT_EQ(TraceEventCount(), 16u);
  EXPECT_EQ(TraceDroppedEventCount(), 84u);

  std::ostringstream os;
  ExportChromeTrace(os);
  json_test::JsonValue root;
  ASSERT_TRUE(json_test::JsonParser::Parse(os.str(), &root)) << os.str();
  ASSERT_TRUE(root.Has("otherData"));
  EXPECT_EQ(root.at("otherData").at("dropped_events").number_value, 84.0);

  int survivors = 0;
  bool drop_metadata_found = false;
  for (const auto& ev : root.at("traceEvents").array) {
    if (ev.at("ph").string_value == "X" &&
        ev.at("name").string_value == "overflow") {
      ++survivors;
    }
    if (ev.at("ph").string_value == "M" &&
        ev.at("name").string_value == "trace_buffer_dropped") {
      drop_metadata_found = true;
      EXPECT_EQ(ev.at("args").at("dropped").number_value, 84.0);
    }
  }
  EXPECT_EQ(survivors, 16);
  EXPECT_TRUE(drop_metadata_found)
      << "per-buffer drop accounting must reach the export";
  SetTraceBufferCapacity(1u << 15);
}

TEST_F(TraceTest, FlowTaggedSpansEmitBoundFlowEvents) {
  SetTraceEnabled(true);
  const std::uint64_t flow_id = (42ull << 32) | 7u;
  {
    TraceSpan span("comm.allreduce", flow_id, 's');
  }
  {
    TraceSpan span("comm.allreduce", flow_id, 'f');
  }
  SetTraceEnabled(false);

  std::ostringstream os;
  ExportChromeTrace(os);
  json_test::JsonValue root;
  ASSERT_TRUE(json_test::JsonParser::Parse(os.str(), &root)) << os.str();
  int starts = 0;
  int finishes = 0;
  for (const auto& ev : root.at("traceEvents").array) {
    const std::string& ph = ev.at("ph").string_value;
    if (ph != "s" && ph != "f") continue;
    EXPECT_EQ(ev.at("cat").string_value, "comm.flow");
    EXPECT_EQ(ev.at("bp").string_value, "e");
    EXPECT_EQ(ev.at("id").string_value, std::to_string(flow_id));
    ph == "s" ? ++starts : ++finishes;
  }
  EXPECT_EQ(starts, 1);
  EXPECT_EQ(finishes, 1);
}

TEST_F(TraceTest, RankTagsBecomePidLanesAndOffsetShiftsTimestamps) {
  SetTraceEnabled(true);
  std::thread rank2([] {
    SetTraceRankForCurrentThread(2);
    TraceSpan span("rank2.work");
  });
  rank2.join();
  SetTraceEnabled(false);
  SetTraceClockOffsetNs(5'000'000);  // +5 ms onto rank 0's axis.

  std::ostringstream os;
  ExportChromeTrace(os);
  SetTraceClockOffsetNs(0);
  json_test::JsonValue root;
  ASSERT_TRUE(json_test::JsonParser::Parse(os.str(), &root)) << os.str();
  bool span_found = false;
  bool lane_found = false;
  for (const auto& ev : root.at("traceEvents").array) {
    if (ev.at("ph").string_value == "X" &&
        ev.at("name").string_value == "rank2.work") {
      span_found = true;
      EXPECT_EQ(ev.at("pid").number_value, 2.0);
      EXPECT_GE(ev.at("ts").number_value, 5000.0)  // µs
          << "the clock offset must be applied at export";
    }
    if (ev.at("ph").string_value == "M" &&
        ev.at("name").string_value == "process_name" &&
        ev.at("pid").number_value == 2.0) {
      lane_found = true;
    }
  }
  EXPECT_TRUE(span_found);
  EXPECT_TRUE(lane_found);
}

TEST_F(TraceTest, PerRankFragmentsMergeIntoOneDocument) {
  SetTraceRunId(77);
  SetTraceEnabled(true);
  SetTraceRankForCurrentThread(0);
  {
    TraceSpan span("rank0.work");
  }
  std::thread rank1([] {
    SetTraceRankForCurrentThread(1);
    TraceSpan span("rank1.work");
  });
  rank1.join();
  SetTraceEnabled(false);

  // Each rank serializes only its own buffers; the merge is pure pasting,
  // exactly what the cross-rank gather ships to rank 0.
  const std::string frag0 = SerializeChromeTraceEventsForRank(0);
  const std::string frag1 = SerializeChromeTraceEventsForRank(1);
  EXPECT_EQ(frag0.find("rank1.work"), std::string::npos);
  EXPECT_EQ(frag1.find("rank0.work"), std::string::npos);
  const std::string merged = BuildMergedChromeTrace({frag0, frag1}, 77);
  SetTraceRunId(0);

  json_test::JsonValue root;
  ASSERT_TRUE(json_test::JsonParser::Parse(merged, &root)) << merged;
  EXPECT_EQ(root.at("otherData").at("run_id").string_value, "77");
  EXPECT_EQ(root.at("otherData").at("world_size").number_value, 2.0);
  bool r0 = false;
  bool r1 = false;
  for (const auto& ev : root.at("traceEvents").array) {
    if (ev.at("ph").string_value != "X") continue;
    if (ev.at("name").string_value == "rank0.work") {
      r0 = true;
      EXPECT_EQ(ev.at("pid").number_value, 0.0);
    }
    if (ev.at("name").string_value == "rank1.work") {
      r1 = true;
      EXPECT_EQ(ev.at("pid").number_value, 1.0);
    }
  }
  EXPECT_TRUE(r0);
  EXPECT_TRUE(r1);
}

}  // namespace
}  // namespace dtucker
