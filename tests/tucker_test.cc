#include "tucker/tucker.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/generators.h"
#include "linalg/blas.h"
#include "tensor/tensor_ops.h"
#include "tucker/hosvd.h"
#include "tucker/tucker_als.h"

namespace dtucker {
namespace {

TEST(TuckerDecompositionTest, ReconstructExactForFullRank) {
  Rng rng(1);
  Tensor x = Tensor::GaussianRandom({4, 5, 6}, rng);
  // Full-rank HOSVD reproduces the tensor exactly.
  TuckerDecomposition dec = Hosvd(x, {4, 5, 6}).ValueOrDie();
  EXPECT_LT(dec.RelativeErrorAgainst(x), 1e-18);
}

TEST(TuckerDecompositionTest, RanksAndByteSize) {
  Tensor x = MakeLowRankTensor({10, 12, 14}, {3, 4, 5}, 0.0, 2);
  TuckerDecomposition dec = Hosvd(x, {3, 4, 5}).ValueOrDie();
  EXPECT_EQ(dec.Ranks(), (std::vector<Index>{3, 4, 5}));
  const std::size_t expected =
      (3 * 4 * 5 + 10 * 3 + 12 * 4 + 14 * 5) * sizeof(double);
  EXPECT_EQ(dec.ByteSize(), expected);
}

TEST(OrthogonalErrorTest, MatchesDirectComputation) {
  Tensor x = MakeLowRankTensor({8, 9, 10}, {2, 3, 4}, 0.1, 3);
  TuckerDecomposition dec = StHosvd(x, {2, 3, 4}).ValueOrDie();
  const double direct = dec.RelativeErrorAgainst(x);
  const double fast = OrthogonalTuckerRelativeError(x.SquaredNorm(),
                                                    dec.core.SquaredNorm());
  EXPECT_NEAR(direct, fast, 1e-8);
}

TEST(HosvdTest, ExactOnExactlyLowRankTensor) {
  Tensor x = MakeLowRankTensor({12, 10, 8}, {3, 3, 3}, 0.0, 4);
  TuckerDecomposition dec = Hosvd(x, {3, 3, 3}).ValueOrDie();
  EXPECT_LT(dec.RelativeErrorAgainst(x), 1e-16);
}

TEST(StHosvdTest, ExactOnExactlyLowRankTensor) {
  Tensor x = MakeLowRankTensor({12, 10, 8}, {3, 3, 3}, 0.0, 5);
  TuckerDecomposition dec = StHosvd(x, {3, 3, 3}).ValueOrDie();
  EXPECT_LT(dec.RelativeErrorAgainst(x), 1e-16);
}

TEST(HosvdTest, FactorsAreOrthonormal) {
  Tensor x = MakeLowRankTensor({9, 9, 9}, {4, 4, 4}, 0.2, 6);
  for (const auto& dec : {Hosvd(x, {2, 3, 4}).ValueOrDie(),
                          StHosvd(x, {2, 3, 4}).ValueOrDie()}) {
    for (const auto& f : dec.factors) {
      EXPECT_TRUE(AlmostEqual(MultiplyTN(f, f), Matrix::Identity(f.cols()),
                              1e-9));
    }
  }
}

TEST(TuckerAlsTest, RejectsBadRanks) {
  Tensor x({4, 4, 4});
  TuckerAlsOptions opt;
  opt.ranks = {2, 2};  // Wrong count.
  EXPECT_FALSE(TuckerAls(x, opt).ok());
  opt.ranks = {2, 2, 9};  // Exceeds dimension.
  EXPECT_FALSE(TuckerAls(x, opt).ok());
  opt.ranks = {0, 2, 2};  // Non-positive.
  EXPECT_FALSE(TuckerAls(x, opt).ok());
}

TEST(TuckerAlsTest, ExactRecovery) {
  Tensor x = MakeLowRankTensor({15, 12, 10}, {3, 3, 3}, 0.0, 7);
  TuckerAlsOptions opt;
  opt.ranks = {3, 3, 3};
  opt.max_iterations = 10;
  TuckerStats stats;
  Result<TuckerDecomposition> dec = TuckerAls(x, opt, &stats);
  ASSERT_TRUE(dec.ok());
  EXPECT_LT(dec.value().RelativeErrorAgainst(x), 1e-14);
  EXPECT_GE(stats.iterations, 1);
}

TEST(TuckerAlsTest, ErrorDecreasesMonotonically) {
  Tensor x = MakeLowRankTensor({14, 13, 12}, {5, 5, 5}, 0.3, 8);
  TuckerAlsOptions opt;
  opt.ranks = {3, 3, 3};
  opt.max_iterations = 8;
  opt.tolerance = 0.0;  // Force all sweeps.
  TuckerStats stats;
  ASSERT_TRUE(TuckerAls(x, opt, &stats).ok());
  ASSERT_GE(stats.error_history.size(), 2u);
  for (std::size_t i = 1; i < stats.error_history.size(); ++i) {
    EXPECT_LE(stats.error_history[i], stats.error_history[i - 1] + 1e-12)
        << "sweep " << i;
  }
}

TEST(TuckerAlsTest, BeatsOrMatchesHosvdInError) {
  Tensor x = MakeLowRankTensor({16, 14, 12}, {6, 6, 6}, 0.4, 9);
  std::vector<Index> ranks = {3, 3, 3};
  TuckerAlsOptions opt;
  opt.ranks = ranks;
  opt.max_iterations = 15;
  Result<TuckerDecomposition> als = TuckerAls(x, opt);
  ASSERT_TRUE(als.ok());
  TuckerDecomposition hosvd = Hosvd(x, ranks).ValueOrDie();
  EXPECT_LE(als.value().RelativeErrorAgainst(x),
            hosvd.RelativeErrorAgainst(x) + 1e-12);
}

TEST(TuckerAlsTest, RandomInitConvergesToo) {
  Tensor x = MakeLowRankTensor({12, 12, 12}, {3, 3, 3}, 0.0, 10);
  TuckerAlsOptions opt;
  opt.ranks = {3, 3, 3};
  opt.init = TuckerInit::kRandom;
  opt.max_iterations = 30;
  Result<TuckerDecomposition> dec = TuckerAls(x, opt);
  ASSERT_TRUE(dec.ok());
  EXPECT_LT(dec.value().RelativeErrorAgainst(x), 1e-10);
}

TEST(TuckerAlsTest, FourOrderTensor) {
  Tensor x = MakeLowRankTensor({8, 7, 6, 5}, {2, 2, 2, 2}, 0.0, 11);
  TuckerAlsOptions opt;
  opt.ranks = {2, 2, 2, 2};
  Result<TuckerDecomposition> dec = TuckerAls(x, opt);
  ASSERT_TRUE(dec.ok());
  EXPECT_LT(dec.value().RelativeErrorAgainst(x), 1e-14);
}

TEST(TuckerAlsTest, ExactSvdUpdateMatchesGramUpdate) {
  Tensor x = MakeLowRankTensor({14, 12, 10}, {6, 6, 6}, 0.3, 14);
  TuckerAlsOptions gram_opt;
  gram_opt.ranks = {3, 3, 3};
  gram_opt.max_iterations = 8;
  TuckerAlsOptions svd_opt = gram_opt;
  svd_opt.factor_update = FactorUpdate::kExactSvd;
  Result<TuckerDecomposition> g = TuckerAls(x, gram_opt);
  Result<TuckerDecomposition> s = TuckerAls(x, svd_opt);
  ASSERT_TRUE(g.ok() && s.ok());
  // Both converge to (essentially) the same objective value.
  EXPECT_NEAR(g.value().RelativeErrorAgainst(x),
              s.value().RelativeErrorAgainst(x), 1e-6);
}

TEST(TuckerAlsTest, RandomizedUpdateCloseToGramUpdate) {
  Tensor x = MakeLowRankTensor({20, 18, 16}, {4, 4, 4}, 0.2, 15);
  TuckerAlsOptions gram_opt;
  gram_opt.ranks = {4, 4, 4};
  gram_opt.max_iterations = 10;
  TuckerAlsOptions rnd_opt = gram_opt;
  rnd_opt.factor_update = FactorUpdate::kRandomized;
  Result<TuckerDecomposition> g = TuckerAls(x, gram_opt);
  Result<TuckerDecomposition> r = TuckerAls(x, rnd_opt);
  ASSERT_TRUE(g.ok() && r.ok());
  EXPECT_LT(r.value().RelativeErrorAgainst(x),
            g.value().RelativeErrorAgainst(x) * 1.1 + 1e-6);
}

TEST(TuckerAlsTest, ScaleInvariance) {
  // Scaling the input scales the core, leaves factors invariant (up to
  // sign), and keeps the relative error identical.
  Tensor x = MakeLowRankTensor({12, 11, 10}, {3, 3, 3}, 0.2, 16);
  Tensor x_scaled = x;
  x_scaled *= 1e6;
  TuckerAlsOptions opt;
  opt.ranks = {3, 3, 3};
  opt.max_iterations = 8;
  Result<TuckerDecomposition> a = TuckerAls(x, opt);
  Result<TuckerDecomposition> b = TuckerAls(x_scaled, opt);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NEAR(a.value().RelativeErrorAgainst(x),
              b.value().RelativeErrorAgainst(x_scaled), 1e-10);
  Tensor scaled_core = a.value().core;
  scaled_core *= 1e6;
  // Factor sign ambiguity can flip core entries; compare norms.
  EXPECT_NEAR(scaled_core.FrobeniusNorm(), b.value().core.FrobeniusNorm(),
              1e-6 * scaled_core.FrobeniusNorm());
}

TEST(TuckerAlsTest, ToleranceStopsEarly) {
  Tensor x = MakeLowRankTensor({10, 10, 10}, {2, 2, 2}, 0.0, 12);
  TuckerAlsOptions opt;
  opt.ranks = {2, 2, 2};
  opt.max_iterations = 100;
  opt.tolerance = 1e-6;
  TuckerStats stats;
  ASSERT_TRUE(TuckerAls(x, opt, &stats).ok());
  EXPECT_LT(stats.iterations, 100);
}

// Rank sweep: error decreases as rank increases (property of nested
// approximation spaces; ALS is near-optimal here).
class TuckerRankSweepTest : public ::testing::TestWithParam<Index> {};

TEST_P(TuckerRankSweepTest, ErrorShrinksWithRank) {
  static Tensor* x = new Tensor(
      MakeLowRankTensor({14, 14, 14}, {8, 8, 8}, 0.2, 13));
  const Index r = GetParam();
  TuckerAlsOptions opt;
  opt.ranks = {r, r, r};
  opt.max_iterations = 10;
  Result<TuckerDecomposition> dec = TuckerAls(*x, opt);
  ASSERT_TRUE(dec.ok());
  const double err = dec.value().RelativeErrorAgainst(*x);

  TuckerAlsOptions opt_next = opt;
  opt_next.ranks = {r + 2, r + 2, r + 2};
  Result<TuckerDecomposition> dec_next = TuckerAls(*x, opt_next);
  ASSERT_TRUE(dec_next.ok());
  EXPECT_LE(dec_next.value().RelativeErrorAgainst(*x), err + 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Ranks, TuckerRankSweepTest,
                         ::testing::Values(2, 4, 6));

}  // namespace
}  // namespace dtucker
